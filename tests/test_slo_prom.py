"""SLO watch engine, Prometheus export, and fleet aggregation tests.

The asyncio pieces run under ``asyncio.run`` inside synchronous tests
(the environment has no pytest-asyncio).
"""

import asyncio
import json

import pytest

from repro.core.config import hypertrio_config
from repro.obs import MetricsRegistry, Observability
from repro.obs import events as ev
from repro.obs.fleet import fleet_registry
from repro.obs.prom import counter_line, gauge_line, registry_to_prom
from repro.obs.slo import (
    SLO_SCHEMA,
    SloFormatError,
    SloRule,
    SloSample,
    SloWatcher,
    load_slo_rules,
    rules_from_dict,
)
from repro.obs.tracer import RecordingTracer
from repro.service import protocol
from repro.service.client import ServiceClient
from repro.service.engine import ServiceEngine
from repro.service.server import SLO_EVAL_INTERVAL, ServiceServer
from repro.trace.constructor import construct_trace
from repro.trace.tenant import profile_by_name

TENANTS = 8
PACKETS = 80


def make_trace(packets=PACKETS):
    return construct_trace(
        profile_by_name("mediastream"),
        num_tenants=TENANTS,
        packets_per_tenant=200_000,
        max_packets=packets,
    )


def make_sample(p99=100.0, drop_rates=None, occupancy=0):
    rates = drop_rates or {}
    return SloSample(
        latency_percentile=lambda quantile: p99,
        drop_rate=lambda cause: rates.get(cause, 0.0),
        ptb_occupancy=occupancy,
    )


class TestPromRendering:
    def test_counters_gauges_histograms(self):
        registry = MetricsRegistry()
        registry.counter("devtlb.hit", structure="devtlb", sid=3).inc(7)
        registry.gauge("queue_depth").set(4)
        histogram = registry.histogram("translation_latency_ns", sid=1)
        for value in (100.0, 200.0, 400.0):
            histogram.record(value)
        text = registry_to_prom(registry.snapshot())
        assert '# TYPE repro_devtlb_hit_total counter' in text
        assert 'repro_devtlb_hit_total{sid="3",structure="devtlb"} 7' in text
        assert "repro_queue_depth 4" in text
        assert 'repro_translation_latency_ns{quantile="0.99",sid="1"}' in text
        assert 'repro_translation_latency_ns_count{sid="1"} 3' in text
        assert text.endswith("\n")

    def test_extra_lines_and_helpers(self):
        extra = [
            counter_line("service_requests", {}, 12),
            gauge_line("slo_breached", {"rule": "tail", "kind": "k"}, 1),
        ]
        text = registry_to_prom({}, extra_lines=extra)
        assert "repro_service_requests_total 12" in text
        assert 'repro_slo_breached{kind="k",rule="tail"} 1' in text

    def test_label_escaping(self):
        text = gauge_line("g", {"cause": 'a"b\\c\nd'}, 1)
        assert '\\"' in text and "\\\\" in text and "\\n" in text


class TestSloRules:
    def good_document(self):
        return {
            "schema": SLO_SCHEMA,
            "rules": [
                {"name": "tail", "kind": "latency_quantile",
                 "quantile": 99, "max_ns": 4000},
                {"name": "drops", "kind": "drop_rate",
                 "cause": "ptb_overflow", "max_rate": 0.05},
                {"name": "dwell", "kind": "ptb_dwell",
                 "watermark": 24, "max_dwell_s": 2.0},
            ],
        }

    def test_parses_all_kinds(self):
        rules = rules_from_dict(self.good_document())
        assert [rule.name for rule in rules] == ["tail", "drops", "dwell"]
        assert rules[0].threshold == 4000.0
        assert rules[1].cause == "ptb_overflow"
        assert rules[2].watermark == 24

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda d: d.update(schema="repro-slo/999"),
            lambda d: d.update(rules=[]),
            lambda d: d["rules"].append({"name": "x", "kind": "nope"}),
            lambda d: d["rules"].append(dict(d["rules"][0])),  # dup name
            lambda d: d["rules"][0].update(max_ns="fast"),
            lambda d: d["rules"][1].update(max_rate=1.5),
            lambda d: d["rules"][2].update(watermark=0),
        ],
    )
    def test_strict_validation(self, mutate):
        document = self.good_document()
        mutate(document)
        with pytest.raises(SloFormatError):
            rules_from_dict(document)

    def test_load_slo_rules_file(self, tmp_path):
        path = tmp_path / "rules.json"
        path.write_text(json.dumps(self.good_document()), encoding="utf-8")
        assert len(load_slo_rules(path)) == 3
        path.write_text("{broken", encoding="utf-8")
        with pytest.raises(SloFormatError):
            load_slo_rules(path)


class TestSloWatcher:
    def test_transitions_only_on_state_change(self):
        tracer = RecordingTracer(sample_rate=1.0)
        rule = SloRule(name="tail", kind="latency_quantile", threshold=1000.0)
        watcher = SloWatcher([rule], tracer=tracer)

        assert watcher.evaluate(make_sample(p99=500.0)) == []
        breach = watcher.evaluate(make_sample(p99=2000.0))
        assert [t["state"] for t in breach] == ["breach"]
        assert watcher.any_breached
        # Steady breached state stays silent.
        assert watcher.evaluate(make_sample(p99=3000.0)) == []
        recover = watcher.evaluate(make_sample(p99=500.0))
        assert [t["state"] for t in recover] == ["recover"]
        assert not watcher.any_breached
        kinds = [event.kind for event in tracer.events]
        assert kinds == [ev.SLO_BREACH, ev.SLO_RECOVER]
        assert watcher.transitions == 2

    def test_drop_rate_rule_by_cause(self):
        rule = SloRule(
            name="drops", kind="drop_rate", threshold=0.05, cause="reset"
        )
        watcher = SloWatcher([rule])
        assert watcher.evaluate(
            make_sample(drop_rates={"reset": 0.01, "any": 0.9})
        ) == []
        assert watcher.evaluate(make_sample(drop_rates={"reset": 0.2}))[0][
            "state"
        ] == "breach"

    def test_dwell_needs_sustained_occupancy(self):
        clock_now = [0.0]
        rule = SloRule(
            name="dwell", kind="ptb_dwell", threshold=2.0, watermark=16
        )
        watcher = SloWatcher([rule], clock=lambda: clock_now[0])

        assert watcher.evaluate(make_sample(occupancy=20)) == []  # timer starts
        clock_now[0] = 1.0
        assert watcher.evaluate(make_sample(occupancy=20)) == []  # under 2 s
        clock_now[0] = 1.5
        assert watcher.evaluate(make_sample(occupancy=2)) == []   # timer resets
        clock_now[0] = 5.0
        assert watcher.evaluate(make_sample(occupancy=20)) == []  # restarted
        clock_now[0] = 8.0
        transitions = watcher.evaluate(make_sample(occupancy=20))
        assert [t["state"] for t in transitions] == ["breach"]

    def test_snapshot_shape(self):
        rule = SloRule(name="tail", kind="latency_quantile", threshold=10.0)
        watcher = SloWatcher([rule])
        watcher.evaluate(make_sample(p99=99.0))
        snapshot = watcher.snapshot()
        assert snapshot["any_breached"] is True
        assert snapshot["rules"][0] == {
            "name": "tail", "kind": "latency_quantile",
            "threshold": 10.0, "breached": True,
        }


class TestFleetRegistry:
    def test_folds_heartbeats_and_results(self, tmp_path):
        heartbeat_dir = tmp_path / "heartbeats"
        heartbeat_dir.mkdir()
        (heartbeat_dir / "abc.json").write_text(json.dumps({
            "spec_hash": "abc", "status": "running",
            "updated_at": 95.0, "packets_done": 500, "rss_kb": 2048,
        }), encoding="utf-8")
        (heartbeat_dir / "bad.json").write_text("{torn", encoding="utf-8")
        with (tmp_path / "results.jsonl").open("w", encoding="utf-8") as f:
            f.write(json.dumps({"status": "ok", "duration_s": 2.0}) + "\n")
            f.write(json.dumps(
                {"status": "failed", "exit_cause": "watchdog",
                 "duration_s": 7.0}
            ) + "\n")
            f.write("not json\n")

        registry = fleet_registry(tmp_path, now=lambda: 100.0)
        assert registry.gauge(
            "runner_heartbeat_age_s", spec="abc", status="running"
        ).value == 5.0
        assert registry.gauge("runner_packets_done", spec="abc").value == 500
        assert registry.gauge("runner_workers", status="running").value == 1
        assert registry.counter("runner_jobs", status="ok").value == 1
        assert registry.counter("runner_jobs", status="failed").value == 1
        assert registry.counter("runner_jobs_exit", cause="watchdog").value == 1
        assert registry.histogram("runner_job_duration_ns").count == 2

    def test_empty_run_dir_is_fine(self, tmp_path):
        registry = fleet_registry(tmp_path)
        assert registry.snapshot()["counters"] == []


def serve_with_slo(rules, slo_backpressure=False, packets=PACKETS):
    """Replay against a server with an armed SLO watcher."""

    async def run():
        trace = make_trace(packets=packets)
        obs = Observability.metrics_only()
        engine = ServiceEngine(hypertrio_config(), trace, observability=obs)
        watcher = SloWatcher(rules) if rules else None
        server = ServiceServer(
            engine, slo_watcher=watcher, slo_backpressure=slo_backpressure
        )
        await server.start()
        client = ServiceClient("127.0.0.1", server.port)
        await client.connect()
        outcomes = await client.replay(trace.packets, window=16)
        stats = await client.stats()
        prom = await client.stats("prom")
        await client.close()
        await server.shutdown()
        return server, outcomes, stats, prom

    return asyncio.run(run())


class TestServiceSlo:
    def test_breach_shows_in_stats_and_prom(self):
        rules = [
            SloRule(name="tail", kind="latency_quantile", threshold=0.0),
            SloRule(name="drops", kind="drop_rate", threshold=1.0),
        ]
        server, outcomes, stats, prom = serve_with_slo(rules)
        assert len(outcomes) == PACKETS
        slo = stats["slo"]
        by_name = {rule["name"]: rule for rule in slo["rules"]}
        assert by_name["tail"]["breached"] is True   # p99 > 0 always
        assert by_name["drops"]["breached"] is False
        assert prom["format"] == "prom"
        text = prom["text"]
        assert 'repro_slo_breached{kind="latency_quantile",rule="tail"} 1' in text
        assert 'repro_slo_breached{kind="drop_rate",rule="drops"} 0' in text
        assert "repro_service_requests_total" in text
        assert "repro_translation_latency_ns" in text

    def test_slo_backpressure_sheds_requests(self):
        rules = [SloRule(name="tail", kind="latency_quantile", threshold=0.0)]
        server, outcomes, stats, _ = serve_with_slo(
            rules, slo_backpressure=True
        )
        assert server.admission.slo_latched is True
        shed = [
            reply for reply in outcomes
            if reply.get("code") == protocol.E_BACKPRESSURE
        ]
        accepted = [
            reply for reply in outcomes if reply.get("type") == protocol.RESULT
        ]
        # The watcher runs every SLO_EVAL_INTERVAL dispatches: requests up
        # to the first evaluation land, everything after it is shed.
        assert len(accepted) >= SLO_EVAL_INTERVAL
        assert shed, "expected backpressure sheds after the first breach"
        assert len(accepted) + len(shed) == PACKETS

    def test_no_rules_means_no_slo_block(self):
        _, outcomes, stats, prom = serve_with_slo(None)
        assert len(outcomes) == PACKETS
        assert "slo" not in stats
        assert "repro_slo_breached" not in prom["text"]


class TestTopCli:
    def test_render_stats_table(self):
        from repro.cli import _render_stats_table

        reply = {
            "processed": 10, "queue_depth": 1,
            "requests_received": 12, "results_sent": 10,
            "packets": {"arrived": 10, "accepted": 9, "dropped": 1,
                        "drop_causes": {"ptb_overflow": 1}},
            "admission": {"0": {"admitted": 10, "rate_limited": 2}},
            "per_sid": {"3": {"count": 5, "mean_ns": 100.0, "p50_ns": 90.0,
                              "p95_ns": 200.0, "p99_ns": 300.0,
                              "devtlb_hits": 8, "devtlb_misses": 2}},
            "slo": {"rules": [{"name": "tail", "kind": "latency_quantile",
                               "threshold": 10.0, "breached": True}]},
        }
        text = _render_stats_table(reply)
        assert "processed 10" in text
        assert "ptb_overflow=1" in text
        assert "rate-limited 2" in text
        assert "80.0%" in text  # devtlb hit rate of SID 3
        assert "slo tail" in text and "BREACHED" in text

    def test_top_run_dir_offline_mode(self, tmp_path, capsys):
        from repro.cli import main

        heartbeat_dir = tmp_path / "heartbeats"
        heartbeat_dir.mkdir()
        (heartbeat_dir / "abc.json").write_text(json.dumps({
            "spec_hash": "abc", "status": "running",
            "updated_at": 0.0, "packets_done": 42, "rss_kb": 100,
        }), encoding="utf-8")
        (tmp_path / "results.jsonl").write_text(
            json.dumps({"status": "ok", "duration_s": 1.0}) + "\n",
            encoding="utf-8",
        )
        assert main(["top", "--run-dir", str(tmp_path),
                     "--iterations", "1"]) == 0
        table = capsys.readouterr().out
        assert "workers: running=1" in table
        assert "jobs: ok=1" in table

        assert main(["top", "--run-dir", str(tmp_path), "--iterations", "1",
                     "--format", "prom"]) == 0
        prom = capsys.readouterr().out
        assert 'repro_runner_jobs_total{status="ok"} 1' in prom

    def test_top_missing_run_dir(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["top", "--run-dir", str(tmp_path / "nope"),
                     "--iterations", "1"]) == 2
