"""Unit tests for trace records, tenant specs, and workload generation."""

import pytest

from repro.mem.address import PAGE_SHIFT_2M
from repro.trace.records import (
    PacketRecord,
    compute_trace_stats,
    load_trace,
    write_trace,
)
from repro.trace.tenant import (
    BENCHMARKS,
    IPERF3,
    MEDIASTREAM,
    WEBSEARCH,
    BenchmarkProfile,
    TenantSpec,
    make_tenant_specs,
    profile_by_name,
)
from repro.trace.workload import (
    HyperTenantSystem,
    build_system,
    build_tenant_workload,
)
from repro.mem.allocator import FrameAllocator


class TestPacketRecord:
    def test_json_round_trip(self):
        record = PacketRecord(sid=7, giovas=(1, 2, 3), size_bytes=900)
        assert PacketRecord.from_json(record.to_json()) == record

    def test_from_json_requires_three_giovas(self):
        with pytest.raises(ValueError):
            PacketRecord.from_json('{"sid": 1, "giovas": [1, 2]}')

    def test_trace_file_round_trip(self, tmp_path):
        packets = [PacketRecord(sid=i % 3, giovas=(i, i + 1, i + 2)) for i in range(10)]
        path = tmp_path / "trace.jsonl"
        assert write_trace(path, packets) == 10
        assert load_trace(path) == packets


class TestTraceStats:
    def test_counts_translations_not_packets(self):
        packets = [PacketRecord(sid=0, giovas=(1, 2, 3))] * 4
        stats = compute_trace_stats(packets)
        assert stats.total_packets == 4
        assert stats.total_translations == 12

    def test_min_max_per_tenant(self):
        packets = [PacketRecord(sid=0, giovas=(1, 2, 3))] * 3
        packets += [PacketRecord(sid=1, giovas=(1, 2, 3))] * 1
        stats = compute_trace_stats(packets)
        assert stats.max_translations_per_tenant == 9
        assert stats.min_translations_per_tenant == 3
        assert stats.num_tenants == 2

    def test_empty_trace(self):
        stats = compute_trace_stats([])
        assert stats.as_row() == (0, 0, 0)


class TestBenchmarkProfiles:
    def test_active_translation_sets_match_paper(self):
        """Section V-C: active sets of 8 / 32 / 36 for the three benchmarks."""
        assert IPERF3.active_translation_set == 8
        assert MEDIASTREAM.active_translation_set == 32
        assert WEBSEARCH.active_translation_set == 36

    def test_registry_contains_paper_benchmarks_plus_keyvalue(self):
        assert set(BENCHMARKS) == {
            "iperf3", "mediastream", "websearch", "keyvalue",
        }

    def test_profile_by_name(self):
        assert profile_by_name("iperf3") is IPERF3
        with pytest.raises(ValueError):
            profile_by_name("nginx")

    def test_iperf3_is_perfectly_regular(self):
        assert IPERF3.jump_probability == 0.0

    def test_scaled_preserves_period_for_long_traces(self):
        scaled = MEDIASTREAM.scaled(packets_per_tenant=200_000)
        assert scaled.uses_per_page == 1500

    def test_scaled_shrinks_period_for_short_traces(self):
        scaled = MEDIASTREAM.scaled(packets_per_tenant=600)
        assert 4 <= scaled.uses_per_page < 1500

    def test_validation(self):
        with pytest.raises(ValueError):
            BenchmarkProfile(name="x", num_data_pages=0)
        with pytest.raises(ValueError):
            BenchmarkProfile(name="x", num_data_pages=1, min_packet_fraction=0.0)
        with pytest.raises(ValueError):
            BenchmarkProfile(name="x", num_data_pages=1, jump_probability=1.5)


class TestMakeTenantSpecs:
    def test_count_and_sids(self):
        specs = make_tenant_specs(IPERF3, num_tenants=8, packets_per_tenant=100)
        assert len(specs) == 8
        assert [spec.sid for spec in specs] == list(range(8))

    def test_min_max_fractions_pinned(self):
        specs = make_tenant_specs(MEDIASTREAM, 16, 1000)
        packets = [spec.packets for spec in specs]
        assert max(packets) == 1000
        assert min(packets) == pytest.approx(
            1000 * MEDIASTREAM.min_packet_fraction, abs=1
        )

    def test_single_tenant_gets_full_budget(self):
        (spec,) = make_tenant_specs(MEDIASTREAM, 1, 500)
        assert spec.packets == 500

    def test_deterministic(self):
        a = make_tenant_specs(WEBSEARCH, 32, 1000, seed=3)
        b = make_tenant_specs(WEBSEARCH, 32, 1000, seed=3)
        assert a == b

    def test_validation(self):
        with pytest.raises(ValueError):
            make_tenant_specs(IPERF3, 0, 100)
        with pytest.raises(ValueError):
            make_tenant_specs(IPERF3, 1, 0)
        with pytest.raises(ValueError):
            TenantSpec(sid=-1, profile=IPERF3, packets=1)


class TestWorkloads:
    def test_workload_packet_count_matches_spec(self, host_allocator):
        spec = make_tenant_specs(IPERF3, 1, 50)[0]
        workload = build_tenant_workload(spec, host_allocator)
        assert len(workload.materialize()) == 50

    def test_all_tenants_share_giova_layout(self, host_allocator):
        """Section IV-D: independent tenants use the same gIOVA pages."""
        specs = make_tenant_specs(MEDIASTREAM, 2, 50)
        first = build_tenant_workload(specs[0], host_allocator)
        second = build_tenant_workload(specs[1], host_allocator)
        pages_a = {p.giovas[1] >> PAGE_SHIFT_2M for p in first.materialize()}
        pages_b = {p.giovas[1] >> PAGE_SHIFT_2M for p in second.materialize()}
        assert pages_a & pages_b

    def test_tenants_have_distinct_host_frames(self, host_allocator):
        specs = make_tenant_specs(MEDIASTREAM, 2, 10)
        first = build_tenant_workload(specs[0], host_allocator)
        second = build_tenant_workload(specs[1], host_allocator)
        giova = 0x3480_0000
        assert first.space.translate(giova) != second.space.translate(giova)

    def test_init_requests_present(self, host_allocator):
        spec = make_tenant_specs(MEDIASTREAM, 1, 10)[0]
        workload = build_tenant_workload(spec, host_allocator)
        assert len(workload.init_requests) == (
            MEDIASTREAM.init_pages * MEDIASTREAM.init_accesses_per_page
        )

    def test_system_registry(self):
        system, workloads = build_system(make_tenant_specs(IPERF3, 3, 10))
        assert system.num_tenants == 3
        assert system.sids() == (0, 1, 2)
        assert system.walker_for(1) is workloads[1].walker

    def test_duplicate_sid_rejected(self):
        system = HyperTenantSystem()
        spec = make_tenant_specs(IPERF3, 1, 10)[0]
        system.add_tenant(spec)
        with pytest.raises(ValueError):
            system.add_tenant(spec)

    def test_remove_tenant(self):
        system, _ = build_system(make_tenant_specs(IPERF3, 2, 10))
        system.remove_tenant(0)
        assert system.sids() == (1,)
