"""Unit tests for repro.mem.address."""

import pytest

from repro.mem.address import (
    ADDRESS_MASK,
    ENTRIES_PER_NODE,
    LEVEL_BITS,
    PAGE_SHIFT_2M,
    PAGE_SHIFT_4K,
    PAGE_SIZE_2M,
    PAGE_SIZE_4K,
    PAGE_TABLE_LEVELS,
    canonical,
    format_address,
    is_page_aligned,
    level_index,
    level_indices,
    page_base,
    page_number,
    page_offset,
    shift_for_page_size,
)


class TestConstants:
    def test_page_sizes_consistent_with_shifts(self):
        assert PAGE_SIZE_4K == 1 << PAGE_SHIFT_4K
        assert PAGE_SIZE_2M == 1 << PAGE_SHIFT_2M

    def test_huge_page_is_one_level_of_entries(self):
        assert PAGE_SIZE_2M == PAGE_SIZE_4K * ENTRIES_PER_NODE

    def test_four_levels_cover_48_bit_addresses(self):
        assert PAGE_SHIFT_4K + PAGE_TABLE_LEVELS * LEVEL_BITS == 48


class TestPageNumber:
    def test_zero(self):
        assert page_number(0) == 0

    def test_within_first_page(self):
        assert page_number(PAGE_SIZE_4K - 1) == 0

    def test_first_byte_of_second_page(self):
        assert page_number(PAGE_SIZE_4K) == 1

    def test_huge_page_shift(self):
        assert page_number(PAGE_SIZE_2M + 5, PAGE_SHIFT_2M) == 1

    def test_paper_ring_buffer_address(self):
        # The paper's single-tenant trace has its ring page at 0x34800000.
        assert page_number(0x3480_0000) == 0x34800

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            page_number(-1)


class TestPageBase:
    def test_round_trip_with_offset(self):
        address = 0xBBE0_0123
        assert page_base(address) + page_offset(address) == address

    def test_aligned_address_is_its_own_base(self):
        assert page_base(0xBBE0_0000, PAGE_SHIFT_2M) == 0xBBE0_0000

    def test_huge_base(self):
        assert page_base(0xBBE0_0123, PAGE_SHIFT_2M) == 0xBBE0_0000

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            page_base(-5)


class TestPageOffset:
    def test_zero_offset(self):
        assert page_offset(PAGE_SIZE_4K * 7) == 0

    def test_max_offset(self):
        assert page_offset(PAGE_SIZE_4K - 1) == PAGE_SIZE_4K - 1

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            page_offset(-1)


class TestLevelIndex:
    def test_level_one_follows_page_offset(self):
        address = 3 << PAGE_SHIFT_4K
        assert level_index(address, 1) == 3

    def test_level_two_is_huge_page_granularity(self):
        address = 5 << PAGE_SHIFT_2M
        assert level_index(address, 2) == 5

    def test_index_wraps_at_512(self):
        address = ENTRIES_PER_NODE << PAGE_SHIFT_4K
        assert level_index(address, 1) == 0
        assert level_index(address, 2) == 1

    def test_invalid_level_rejected(self):
        with pytest.raises(ValueError):
            level_index(0, 0)
        with pytest.raises(ValueError):
            level_index(0, PAGE_TABLE_LEVELS + 1)

    def test_level_indices_order_is_root_first(self):
        address = (1 << 39) | (2 << 30) | (3 << 21) | (4 << 12)
        assert level_indices(address) == [1, 2, 3, 4]


class TestAlignmentAndCanonical:
    def test_is_page_aligned(self):
        assert is_page_aligned(PAGE_SIZE_4K * 10)
        assert not is_page_aligned(PAGE_SIZE_4K * 10 + 8)

    def test_huge_alignment(self):
        assert is_page_aligned(PAGE_SIZE_2M, PAGE_SHIFT_2M)
        assert not is_page_aligned(PAGE_SIZE_4K, PAGE_SHIFT_2M)

    def test_canonical_clips_high_bits(self):
        assert canonical((1 << 60) | 0x1234) == 0x1234
        assert canonical(ADDRESS_MASK) == ADDRESS_MASK


class TestHelpers:
    def test_shift_for_page_size(self):
        assert shift_for_page_size(PAGE_SIZE_4K) == PAGE_SHIFT_4K
        assert shift_for_page_size(PAGE_SIZE_2M) == PAGE_SHIFT_2M

    def test_shift_for_unsupported_size(self):
        with pytest.raises(ValueError):
            shift_for_page_size(1 << 30)

    def test_format_address(self):
        assert format_address(0x3480_0000) == "0x34800000"
