"""Tests for the parallel experiment orchestrator (repro.runner)."""

import json
import os
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.analysis.experiments import figure9, run_driver
from repro.analysis.scale import SMOKE, RunScale
from repro.analysis.sweeps import (
    cached_trace,
    clear_trace_cache,
    reset_trace_cache_stats,
    set_trace_cache_capacity,
    sweep_tenants,
    trace_cache_stats,
)
from repro.core.config import base_config, hypertrio_config
from repro.runner import (
    ExperimentRunner,
    JobSpec,
    ResultStore,
    RunFailedError,
    RunnerOptions,
    list_runs,
    plan_driver,
    result_from_dict,
    result_to_dict,
)

from tests import runner_stubs

REPO_ROOT = Path(__file__).resolve().parents[1]


def make_spec(benchmark="stub", seed=0, **config):
    """A tiny spec for stub job functions (config dict is free-form)."""
    return JobSpec(
        config={"name": "Stub", **config},
        benchmark=benchmark,
        num_tenants=1,
        interleaving="RR1",
        max_packets=100,
        seed=seed,
    )


@pytest.fixture
def restore_trace_cache():
    yield
    clear_trace_cache()
    reset_trace_cache_stats()
    set_trace_cache_capacity(8)


# ----------------------------------------------------------------------
# JobSpec hashing
# ----------------------------------------------------------------------

class TestSpecHash:
    def test_round_trip_preserves_hash(self):
        spec = JobSpec.from_point(base_config(), "mediastream", 4, "RR1", SMOKE,
                                  seed=3)
        rebuilt = JobSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert rebuilt == spec
        assert rebuilt.spec_hash == spec.spec_hash

    def test_hash_distinguishes_configs_with_same_name(self):
        # figure11b evaluates several configs all named "Base": the hash
        # must key on content, not on the display name.
        from repro.core.config import TlbConfig

        lru = base_config().with_overrides(
            devtlb=TlbConfig(num_entries=64, ways=8, policy="lru")
        )
        a = JobSpec.from_point(lru, "mediastream", 2, "RR1", SMOKE)
        b = JobSpec.from_point(base_config(), "mediastream", 2, "RR1", SMOKE)
        assert a.spec_hash != b.spec_hash

    def test_hash_ignores_scale_name_and_sweep_shape(self):
        # Two presets with the same per-point knobs share results.
        wide = RunScale(name="wide", tenant_counts=(2, 4, 8),
                        interleavings=("RR1", "RR4"),
                        benchmarks=("mediastream", "iperf3"),
                        max_packets=SMOKE.max_packets,
                        packets_per_tenant=SMOKE.packets_per_tenant,
                        warmup_fraction=SMOKE.warmup_fraction)
        a = JobSpec.from_point(base_config(), "mediastream", 2, "RR1", SMOKE)
        b = JobSpec.from_point(base_config(), "mediastream", 2, "RR1", wide)
        assert a.spec_hash == b.spec_hash

    def test_hash_stable_across_processes(self):
        spec = JobSpec.from_point(base_config(), "mediastream", 4, "RR1", SMOKE,
                                  seed=3)
        script = (
            "from repro.analysis.scale import SMOKE\n"
            "from repro.core.config import base_config\n"
            "from repro.runner import JobSpec\n"
            "print(JobSpec.from_point(base_config(), 'mediastream', 4, 'RR1',"
            " SMOKE, seed=3).spec_hash)\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        output = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True, check=True, env=env,
            cwd=REPO_ROOT, timeout=120,
        ).stdout.strip()
        assert output == spec.spec_hash


# ----------------------------------------------------------------------
# Store, memoization, resume
# ----------------------------------------------------------------------

class TestStoreAndResume:
    def test_rerun_is_fully_cached(self, tmp_path):
        specs = [make_spec(seed=i) for i in range(4)]
        runner = ExperimentRunner(
            store=ResultStore(tmp_path, "r1"),
            options=RunnerOptions(jobs=2),
            job_fn=runner_stubs.ok_job,
        )
        first = runner.run(specs)
        assert all(r.ok for r in first)
        assert runner.stats.executed == 4 and runner.stats.cached == 0

        # Re-run against the same store with a job fn that would fail if it
        # executed even once: everything must come from the cache.
        resumed = ExperimentRunner(
            store=ResultStore(tmp_path, "r1"),
            options=RunnerOptions(jobs=2),
            job_fn=runner_stubs.failing_job,
        )
        second = resumed.run(specs)
        assert resumed.stats.executed == 0 and resumed.stats.cached == 4
        assert all(r.cached for r in second)
        assert [r.result for r in second] == [r.result for r in first]

    def test_resume_executes_only_missing_points(self, tmp_path):
        old = [make_spec(seed=i) for i in range(2)]
        runner = ExperimentRunner(
            store=ResultStore(tmp_path, "r2"),
            options=RunnerOptions(jobs=2),
            job_fn=runner_stubs.ok_job,
        )
        runner.run(old)

        # Simulates resuming a killed run: two points done, two missing.
        extended = old + [make_spec(seed=i) for i in (7, 8)]
        resumed = ExperimentRunner(
            store=ResultStore(tmp_path, "r2"),
            options=RunnerOptions(jobs=2),
            job_fn=runner_stubs.ok_job,
        )
        results = resumed.run(extended)
        assert resumed.stats.cached == 2 and resumed.stats.executed == 2
        assert [r.result["seed"] for r in results] == [0, 1, 7, 8]

    def test_torn_final_line_is_skipped(self, tmp_path):
        store = ResultStore(tmp_path, "r3")
        runner = ExperimentRunner(
            store=store, options=RunnerOptions(jobs=1),
            job_fn=runner_stubs.ok_job,
        )
        runner.run([make_spec(seed=1)])
        with store.results_path.open("a", encoding="utf-8") as handle:
            handle.write('{"spec_hash": "deadbeef", "status": "ok", "resu')
        reloaded = ResultStore(tmp_path, "r3")
        assert reloaded.completed_count == 1

    def test_failed_records_are_not_memoized(self, tmp_path):
        spec = make_spec(seed=9)
        failing = ExperimentRunner(
            store=ResultStore(tmp_path, "r4"),
            options=RunnerOptions(jobs=1, max_attempts=1),
            job_fn=runner_stubs.failing_job,
        )
        assert not failing.run([spec])[0].ok
        retried = ExperimentRunner(
            store=ResultStore(tmp_path, "r4"),
            options=RunnerOptions(jobs=1),
            job_fn=runner_stubs.ok_job,
        )
        result = retried.run([spec])[0]
        assert result.ok and not result.cached

    def test_manifest_records_environment(self, tmp_path):
        store = ResultStore(tmp_path, "r5")
        manifest = store.write_manifest(wall_clock_s=1.5, experiment="figure9")
        env = manifest["environment"]
        assert env["python"] and env["cpu_count"] >= 1
        assert "REPRO_BENCH_SCALE" in env
        assert manifest["experiment"] == "figure9"
        # Wall clock accumulates across invocations (resumed runs).
        manifest = store.write_manifest(wall_clock_s=2.0)
        assert manifest["total_wall_clock_s"] == pytest.approx(3.5)
        assert list_runs(tmp_path) == ["r5"]


# ----------------------------------------------------------------------
# Retry, failure surfacing, timeout
# ----------------------------------------------------------------------

class TestRetryAndTimeout:
    @pytest.mark.parametrize("jobs", [1, 2])
    def test_retry_then_fail_surfaces_worker_exception(self, jobs):
        runner = ExperimentRunner(
            options=RunnerOptions(
                jobs=jobs, max_attempts=3, job_error_attempts=3, backoff_s=0.01
            ),
            job_fn=runner_stubs.failing_job,
        )
        result = runner.run([make_spec(seed=5)])[0]
        assert result.status == "failed"
        assert result.attempts == 3
        assert "ValueError" in result.error and "kaboom-5" in result.error
        assert runner.stats.retried == 2

        with pytest.raises(RunFailedError, match="kaboom-5"):
            runner.run_or_raise([make_spec(seed=5)])

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_retry_then_succeed(self, jobs, tmp_path):
        marker = tmp_path / f"marker-{jobs}"
        spec = make_spec(seed=1, marker=str(marker))
        runner = ExperimentRunner(
            options=RunnerOptions(
                jobs=jobs, max_attempts=2, job_error_attempts=2, backoff_s=0.01
            ),
            job_fn=runner_stubs.fail_once_job,
        )
        result = runner.run([spec])[0]
        assert result.ok
        assert result.attempts == 2

    def test_timeout_kills_hung_job_and_run_completes(self):
        specs = [
            make_spec(benchmark="hang", seed=1),
            make_spec(seed=2),
            make_spec(seed=3),
        ]
        runner = ExperimentRunner(
            options=RunnerOptions(jobs=2, timeout_s=1.0, max_attempts=1),
            job_fn=runner_stubs.hang_job,
        )
        started = time.monotonic()
        results = runner.run(specs)
        elapsed = time.monotonic() - started
        by_seed = {r.spec["seed"]: r for r in results}
        assert by_seed[1].status == "failed"
        assert "timed out" in by_seed[1].error
        assert by_seed[2].ok and by_seed[3].ok
        # Far below the 120s hang: the worker was killed, not awaited.
        assert elapsed < 30


# ----------------------------------------------------------------------
# End-to-end equivalence with the sequential paths
# ----------------------------------------------------------------------

class TestParallelEquivalence:
    def test_mini_sweep_matches_sequential_point_for_point(
        self, tmp_path, restore_trace_cache
    ):
        scale = RunScale(
            name="test", tenant_counts=(2, 4), interleavings=("RR1",),
            benchmarks=("mediastream",), max_packets=500,
            packets_per_tenant=50_000,
        )
        configs = [base_config(), hypertrio_config()]
        sequential = sweep_tenants(configs, ["mediastream"], ["RR1"], scale)
        clear_trace_cache()
        runner = ExperimentRunner(
            store=ResultStore(tmp_path, "sweep"), options=RunnerOptions(jobs=2)
        )
        parallel = sweep_tenants(
            configs, ["mediastream"], ["RR1"], scale, runner=runner
        )
        assert runner.stats.executed == len(sequential)
        assert len(parallel) == len(sequential)
        for seq_point, par_point in zip(sequential, parallel):
            assert par_point.config_name == seq_point.config_name
            assert par_point.benchmark == seq_point.benchmark
            assert par_point.num_tenants == seq_point.num_tenants
            assert par_point.interleaving == seq_point.interleaving
            assert par_point.result == seq_point.result

    def test_result_serialization_round_trips_exactly(self, restore_trace_cache):
        from repro.analysis.sweeps import run_point

        scale = RunScale(
            name="test", tenant_counts=(2,), interleavings=("RR1",),
            benchmarks=("mediastream",), max_packets=400,
        )
        result = run_point(
            hypertrio_config(), "mediastream", 2, "RR1", scale
        ).result
        restored = result_from_dict(
            json.loads(json.dumps(result_to_dict(result)))
        )
        assert restored == result
        # The observability-era fields survive the trip with int bucket keys.
        assert restored.latency.buckets == result.latency.buckets
        assert all(isinstance(k, int) for k in restored.latency.buckets)
        assert restored.latency.min_ns == result.latency.min_ns
        assert restored.percentiles == result.percentiles
        assert restored.percentiles["p50_ns"] <= restored.percentiles["p99_ns"]

    def test_deserializes_records_predating_latency_histograms(
        self, restore_trace_cache
    ):
        """Stored results from before buckets/min_ns/percentiles load fine."""
        from repro.analysis.sweeps import run_point

        scale = RunScale(
            name="test", tenant_counts=(2,), interleavings=("RR1",),
            benchmarks=("mediastream",), max_packets=400,
        )
        result = run_point(
            hypertrio_config(), "mediastream", 2, "RR1", scale
        ).result
        raw = json.loads(json.dumps(result_to_dict(result)))
        del raw["latency"]["buckets"]
        del raw["latency"]["min_ns"]
        del raw["percentiles"]
        restored = result_from_dict(raw)
        assert restored.latency.count == result.latency.count
        assert restored.latency.mean_ns == result.latency.mean_ns
        assert restored.latency.buckets == {}
        assert restored.latency.min_ns == 0.0
        assert restored.percentiles == {}
        assert restored.latency.percentile(99) == 0.0  # no histogram: defined

    def test_experiment_driver_matches_sequential(
        self, tmp_path, restore_trace_cache
    ):
        small = RunScale(
            name="smoke", tenant_counts=(2,), interleavings=("RR1",),
            benchmarks=("mediastream",), max_packets=400,
        )
        sequential = figure9(scale=small)
        runner = ExperimentRunner(
            store=ResultStore(tmp_path, "fig9"), options=RunnerOptions(jobs=2)
        )
        parallel = run_driver("figure9", scale=small, runner=runner)
        assert parallel.columns == sequential.columns
        assert [tuple(r) for r in parallel.rows] == \
            [tuple(r) for r in sequential.rows]
        assert runner.stats.executed == 4  # 2 configs x 2 tenant counts

    def test_driver_without_sweep_points_runs_once(self, tmp_path):
        runner = ExperimentRunner(
            store=ResultStore(tmp_path, "t2"), options=RunnerOptions(jobs=2)
        )
        table = run_driver("table2", runner=runner)
        assert table.experiment_id == "Table II"
        assert runner.stats.total == 0  # nothing was planned or executed

    def test_plan_deduplicates_points(self):
        small = RunScale(
            name="smoke", tenant_counts=(2,), interleavings=("RR1",),
            benchmarks=("mediastream",), max_packets=400,
        )
        specs, _ = plan_driver(figure9, {"scale": small})
        assert len(specs) == len({s.spec_hash for s in specs}) == 4


# ----------------------------------------------------------------------
# Trace-cache telemetry (per-process bounded cache)
# ----------------------------------------------------------------------

class TestTraceCacheTelemetry:
    def test_hit_miss_counters(self, tiny_scale, restore_trace_cache):
        clear_trace_cache()
        reset_trace_cache_stats()
        first = cached_trace("mediastream", 2, "RR1", tiny_scale)
        second = cached_trace("mediastream", 2, "RR1", tiny_scale)
        assert first is second
        stats = trace_cache_stats()
        assert stats.hits == 1 and stats.misses == 1 and stats.size == 1

    def test_capacity_is_enforced_immediately(self, tiny_scale, restore_trace_cache):
        clear_trace_cache()
        reset_trace_cache_stats()
        set_trace_cache_capacity(1)
        cached_trace("mediastream", 2, "RR1", tiny_scale)
        cached_trace("mediastream", 2, "RR4", tiny_scale)
        stats = trace_cache_stats()
        assert stats.size == 1 and stats.capacity == 1
        # Shrinking below current occupancy evicts eagerly.
        set_trace_cache_capacity(2)
        cached_trace("mediastream", 2, "RR1", tiny_scale)
        assert trace_cache_stats().size == 2
        set_trace_cache_capacity(1)
        assert trace_cache_stats().size == 1

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            set_trace_cache_capacity(0)
