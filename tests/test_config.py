"""Unit tests for configuration presets (Tables II and IV)."""

import dataclasses

import pytest

from repro.core.config import (
    ArchConfig,
    PrefetchConfig,
    TimingParams,
    TlbConfig,
    base_config,
    case_study_timing,
    hypertrio_config,
)


class TestTimingParams:
    def test_table2_defaults(self):
        timing = TimingParams()
        assert timing.pcie_one_way_ns == 450.0
        assert timing.dram_latency_ns == 50.0
        assert timing.iotlb_hit_ns == 2.0
        assert timing.packet_bytes == 1542
        assert timing.link_bandwidth_gbps == 200.0

    def test_packet_interarrival_matches_paper(self):
        """1500 B packets arrive roughly every 62 ns on a 200 Gb/s link."""
        timing = TimingParams()
        assert timing.packet_interarrival_ns == pytest.approx(61.68)

    def test_full_walk_latency_sanity(self):
        timing = TimingParams()
        assert timing.full_walk_latency_ns == pytest.approx(
            2 * 450.0 + 24 * 50.0
        )

    def test_case_study_link_is_10g(self):
        assert case_study_timing().link_bandwidth_gbps == 10.0

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            TimingParams().dram_latency_ns = 1.0


class TestTlbConfig:
    def test_validation_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            TlbConfig(num_entries=10, ways=4)
        with pytest.raises(ValueError):
            TlbConfig(num_entries=0, ways=1)
        with pytest.raises(ValueError):
            TlbConfig(num_entries=64, ways=8, num_partitions=3)

    def test_fully_associative_skips_geometry_checks(self):
        config = TlbConfig(num_entries=36, ways=1, fully_associative=True)
        assert config.fully_associative


class TestBaseConfig:
    def test_table4_base_column(self):
        config = base_config()
        assert config.ptb_entries == 1
        assert config.devtlb == TlbConfig(64, 8, 1, "lfu")
        assert config.l2_tlb == TlbConfig(512, 16, 1, "lfu")
        assert config.l3_tlb == TlbConfig(1024, 16, 1, "lfu")
        assert not config.prefetch.enabled

    def test_chipset_iotlb_mirrors_devtlb(self):
        config = base_config()
        assert config.effective_chipset_iotlb == config.devtlb


class TestHyperTrioConfig:
    def test_table4_hypertrio_column(self):
        config = hypertrio_config()
        assert config.ptb_entries == 32
        assert config.devtlb.num_partitions == 8
        assert config.l2_tlb.num_partitions == 32
        assert config.l3_tlb.num_partitions == 64
        assert config.prefetch.enabled
        assert config.prefetch.buffer_entries == 8
        assert config.prefetch.pages_per_tenant == 2

    def test_devtlb_geometry_unchanged_from_base(self):
        """HyperTRIO partitions the same 64-entry, 8-way DevTLB."""
        base, hyper = base_config(), hypertrio_config()
        assert hyper.devtlb.num_entries == base.devtlb.num_entries
        assert hyper.devtlb.ways == base.devtlb.ways

    def test_with_overrides_returns_new_config(self):
        config = hypertrio_config()
        modified = config.with_overrides(ptb_entries=8)
        assert modified.ptb_entries == 8
        assert config.ptb_entries == 32
        assert modified.devtlb == config.devtlb

    def test_custom_timing_propagates(self):
        config = hypertrio_config(timing=case_study_timing())
        assert config.timing.link_bandwidth_gbps == 10.0


class TestPrefetchConfig:
    def test_defaults(self):
        config = PrefetchConfig()
        assert not config.enabled
        assert config.buffer_entries == 8
        assert config.pages_per_tenant == 2
