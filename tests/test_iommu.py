"""Unit tests for the IOMMU translate path and context cache."""

import pytest

from repro.cache.setassoc import SetAssociativeCache
from repro.iommu.context import ContextCache, ContextEntry, SourceId
from repro.iommu.iommu import Iommu, IommuTimings
from repro.mem.address import PAGE_SHIFT_2M
from repro.mem.allocator import FrameAllocator
from repro.mem.dram import MainMemory
from repro.mem.pagetable import AddressSpace, TranslationFault
from repro.mem.walker import TwoDimensionalWalker


@pytest.fixture
def tenant(host_allocator):
    space = AddressSpace(FrameAllocator(base=0x4000_0000), host_allocator, "t0")
    space.map_io_page(0x3480_0000)
    space.map_io_page(0xBBE0_0000, PAGE_SHIFT_2M)
    return space


def make_iommu(tenant, with_context=True):
    walker = TwoDimensionalWalker(tenant)
    context = None
    if with_context:
        context = ContextCache()
        context.register(0, ContextEntry(did=0, root_table_hpa=0x1000))
    return Iommu(
        iotlb=SetAssociativeCache(64, 8, name="iotlb"),
        nested_tlb=SetAssociativeCache(1024, 16, name="nested"),
        pte_cache=SetAssociativeCache(512, 16, name="pte"),
        walker_for_sid=lambda sid: walker,
        memory=MainMemory(latency_ns=50.0),
        context_cache=context,
        timings=IommuTimings(iotlb_hit_ns=2.0, cache_hit_ns=2.0),
    )


class TestSourceId:
    def test_value_encoding(self):
        sid = SourceId(bus=1, device=2, function=3)
        assert sid.value == (1 << 8) | (2 << 3) | 3

    def test_from_index_round_trip(self):
        for index in (0, 7, 63, 500):
            assert SourceId.from_index(index).value == index

    def test_field_validation(self):
        with pytest.raises(ValueError):
            SourceId(bus=256, device=0, function=0)
        with pytest.raises(ValueError):
            SourceId(bus=0, device=32, function=0)
        with pytest.raises(ValueError):
            SourceId(bus=0, device=0, function=8)

    def test_from_index_bounds(self):
        with pytest.raises(ValueError):
            SourceId.from_index(-1)


class TestContextCache:
    def test_first_resolve_misses(self):
        cache = ContextCache()
        cache.register(5, ContextEntry(did=5, root_table_hpa=0x1000))
        resolution = cache.resolve(5)
        assert not resolution.hit
        assert resolution.entry.did == 5

    def test_second_resolve_hits(self):
        cache = ContextCache()
        cache.register(5, ContextEntry(did=5, root_table_hpa=0x1000))
        cache.resolve(5)
        assert cache.resolve(5).hit

    def test_unregistered_sid_raises(self):
        with pytest.raises(KeyError):
            ContextCache().resolve(99)

    def test_stats_exposed(self):
        cache = ContextCache()
        cache.register(1, ContextEntry(did=1, root_table_hpa=0))
        cache.resolve(1)
        cache.resolve(1)
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1


class TestTranslatePath:
    def test_cold_translation_walks(self, tenant):
        iommu = make_iommu(tenant)
        outcome = iommu.translate(0, 0x3480_0000)
        assert not outcome.iotlb_hit
        assert outcome.memory_accesses > 0
        assert iommu.walks_performed == 1

    def test_cold_4k_walk_reads_bounded_by_24(self, tenant):
        """A fully cold 2-D walk enumerates 24 accesses, but even on the
        first translation the PTE cache captures *in-walk* reuse (the five
        host walks share their upper-level entries), so actual DRAM reads
        land well below 24 and above the 5-phase minimum."""
        iommu = make_iommu(tenant, with_context=False)
        outcome = iommu.translate(0, 0x3480_0000)
        assert 5 < outcome.memory_accesses <= 24
        # Latency = DRAM reads + cache-hit charges + IOTLB lookup.
        hits = 24 - outcome.memory_accesses
        assert outcome.latency_ns == pytest.approx(
            outcome.memory_accesses * 50.0 + hits * 2.0 + 2.0
        )

    def test_warm_translation_hits_iotlb(self, tenant):
        iommu = make_iommu(tenant)
        iommu.translate(0, 0x3480_0000)
        outcome = iommu.translate(0, 0x3480_0008)
        assert outcome.iotlb_hit
        assert outcome.memory_accesses == 0
        assert iommu.walks_performed == 1

    def test_hpa_matches_functional_translation(self, tenant):
        iommu = make_iommu(tenant)
        outcome = iommu.translate(0, 0x3480_0000)
        assert outcome.hpa == tenant.translate(0x3480_0000) & ~0xFFF

    def test_2m_mapping_reports_page_shift(self, tenant):
        iommu = make_iommu(tenant)
        outcome = iommu.translate(0, 0xBBE0_0000)
        assert outcome.page_shift == PAGE_SHIFT_2M

    def test_second_walk_cheaper_via_walk_caches(self, tenant):
        """Nested/PTE caches shorten the second tenant page's walk."""
        iommu = make_iommu(tenant, with_context=False)
        first = iommu.translate(0, 0x3480_0000)
        second = iommu.translate(0, 0xBBE0_0000)
        assert not second.iotlb_hit
        assert second.memory_accesses < first.memory_accesses

    def test_nested_hits_counted(self, tenant):
        iommu = make_iommu(tenant, with_context=False)
        iommu.translate(0, 0x3480_0000)
        second = iommu.translate(0, 0xBBE0_0000)
        assert second.nested_hits > 0

    def test_unmapped_address_faults(self, tenant):
        iommu = make_iommu(tenant)
        with pytest.raises(TranslationFault):
            iommu.translate(0, 0xDEAD_0000)

    def test_invalidate_tenant_flushes_all_structures(self, tenant):
        iommu = make_iommu(tenant)
        iommu.translate(0, 0x3480_0000)
        iommu.invalidate_tenant(0)
        outcome = iommu.translate(0, 0x3480_0000)
        assert not outcome.iotlb_hit
        assert iommu.walks_performed == 2

    def test_context_miss_charges_memory_read(self, tenant):
        with_context = make_iommu(tenant, with_context=True)
        without_context = make_iommu(tenant, with_context=False)
        with_context.translate(0, 0x3480_0000)
        without_context.translate(0, 0x3480_0000)
        assert (
            with_context.memory.stats.page_table_reads
            == without_context.memory.stats.page_table_reads + 1
        )

    def test_dram_accounting(self, tenant):
        iommu = make_iommu(tenant, with_context=False)
        outcome = iommu.translate(0, 0x3480_0000)
        assert iommu.memory.stats.page_table_reads == outcome.memory_accesses
        assert iommu.memory.stats.reads == outcome.memory_accesses
