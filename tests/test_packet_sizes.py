"""Tests for variable packet sizes and the key-value workload."""

import pytest

from repro.core.config import base_config
from repro.sim.simulator import HyperSimulator
from repro.trace.constructor import construct_trace
from repro.trace.tenant import BenchmarkProfile, IPERF3, KEYVALUE


class TestKeyValueProfile:
    def test_profile_shape(self):
        assert KEYVALUE.small_packet_fraction == 0.6
        assert KEYVALUE.small_packet_bytes < KEYVALUE.packet_bytes
        assert KEYVALUE.name == "keyvalue"

    def test_trace_mixes_sizes(self):
        trace = construct_trace(KEYVALUE, 4, 100_000, max_packets=800)
        sizes = [packet.size_bytes for packet in trace.packets]
        assert set(sizes) == {KEYVALUE.small_packet_bytes, KEYVALUE.packet_bytes}
        small_fraction = sizes.count(KEYVALUE.small_packet_bytes) / len(sizes)
        assert small_fraction == pytest.approx(0.6, abs=0.1)

    def test_default_profiles_are_fixed_size(self):
        trace = construct_trace(IPERF3, 2, 100_000, max_packets=200)
        assert {packet.size_bytes for packet in trace.packets} == {1542}

    def test_size_validation(self):
        with pytest.raises(ValueError):
            BenchmarkProfile(name="x", num_data_pages=1,
                             small_packet_fraction=1.5)
        with pytest.raises(ValueError):
            BenchmarkProfile(name="x", num_data_pages=1, packet_bytes=10)


class TestVariableSizeTiming:
    def test_small_packets_arrive_faster(self):
        """Elapsed wire time for N small packets is shorter than for N
        full frames, so the same translation latencies hurt more."""
        def elapsed(profile):
            trace = construct_trace(profile, 2, 100_000, max_packets=400)
            result = HyperSimulator(base_config(), trace, native=True).run()
            return result.elapsed_ns

        assert elapsed(KEYVALUE) < elapsed(IPERF3)

    def test_bandwidth_accounts_actual_bytes(self):
        trace = construct_trace(KEYVALUE, 2, 100_000, max_packets=400)
        result = HyperSimulator(base_config(), trace, native=True).run()
        # Native mode saturates the link regardless of packet sizes.
        assert result.link_utilization == pytest.approx(1.0, abs=0.01)

    def test_keyvalue_harder_than_iperf_for_base(self):
        def utilization(profile):
            trace = construct_trace(profile, 32, 100_000, max_packets=900)
            return HyperSimulator(base_config(), trace).run().link_utilization

        assert utilization(KEYVALUE) <= utilization(IPERF3) + 0.02
