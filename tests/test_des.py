"""Cross-validation: the event-driven engine must match the analytic one."""

import pytest

from repro.core.config import DeviceConfig, base_config, hypertrio_config
from repro.runner.serialize import result_to_dict
from repro.sim.des import EventDrivenSimulator, EventKind, EventQueue, simulate_evented
from repro.sim.simulator import HyperSimulator
from repro.trace.constructor import construct_trace
from repro.trace.tenant import IPERF3, KEYVALUE, MEDIASTREAM


def _fresh_trace(profile=MEDIASTREAM, tenants=8, packets=900, interleaving="RR1"):
    return construct_trace(
        profile,
        num_tenants=tenants,
        packets_per_tenant=100_000,
        interleaving=interleaving,
        max_packets=packets,
    )


def _compare(config, profile=MEDIASTREAM, tenants=8, packets=900,
             interleaving="RR1", warmup=0, native=False):
    analytic = HyperSimulator(config, _fresh_trace(profile, tenants, packets,
                                                   interleaving),
                              native=native).run(warmup_packets=warmup)
    evented = EventDrivenSimulator(config, _fresh_trace(profile, tenants,
                                                        packets, interleaving),
                                   native=native).run(warmup_packets=warmup)
    return analytic, evented


def _assert_identical(analytic, evented):
    assert evented.achieved_bandwidth_gbps == pytest.approx(
        analytic.achieved_bandwidth_gbps, rel=1e-9
    )
    assert evented.elapsed_ns == pytest.approx(analytic.elapsed_ns, rel=1e-9)
    assert evented.packets.arrived == analytic.packets.arrived
    assert evented.packets.dropped == analytic.packets.dropped
    assert evented.packets.bytes_processed == analytic.packets.bytes_processed
    assert evented.latency.count == analytic.latency.count
    assert evented.latency.total_ns == pytest.approx(
        analytic.latency.total_ns, rel=1e-9
    )
    for name, stats in analytic.cache_stats.items():
        other = evented.cache_stats[name]
        assert (other.hits, other.misses, other.evictions) == (
            stats.hits, stats.misses, stats.evictions,
        ), name


class TestEngineEquivalence:
    def test_base_config_identical(self):
        _assert_identical(*_compare(base_config()))

    def test_hypertrio_with_prefetch_identical(self):
        _assert_identical(*_compare(hypertrio_config()))

    def test_heavy_drop_regime_identical(self):
        _assert_identical(*_compare(base_config(), tenants=32, packets=1200))

    def test_rand_interleaving_identical(self):
        _assert_identical(*_compare(hypertrio_config(), interleaving="RAND1"))

    def test_variable_packet_sizes_identical(self):
        _assert_identical(*_compare(hypertrio_config(), profile=KEYVALUE))

    def test_warmup_accounting_identical(self):
        _assert_identical(*_compare(hypertrio_config(), warmup=200))

    def test_native_mode_identical(self):
        _assert_identical(*_compare(base_config(), native=True))

    def test_iperf_small_identical(self):
        _assert_identical(*_compare(base_config(), profile=IPERF3, tenants=2,
                                    packets=400))

    def test_convenience_wrapper(self):
        trace = _fresh_trace()
        result = simulate_evented(hypertrio_config(), trace, warmup_packets=100)
        assert 0.0 < result.link_utilization <= 1.0


class TestMultiDeviceParity:
    """Analytic vs event-driven over the fabric dimension.

    The matrix crosses device counts with interleavings on a config that
    exercises every mechanism the engines must agree on per device:
    prefetch installs (heap vs install events), invalidations, and a
    bounded walker pool shared across devices.  Results are compared via
    their full serialised documents — every counter, histogram bucket,
    per-device breakdown, and fabric aggregate must be identical.
    """

    @staticmethod
    def _config(devices):
        return hypertrio_config().with_overrides(
            iommu_walkers=2,
            devices=DeviceConfig(count=devices, sid_map="round_robin"),
        )

    @pytest.mark.parametrize("devices", [1, 2, 4])
    @pytest.mark.parametrize("interleaving", ["RR1", "RR4", "RAND1"])
    def test_serialised_results_identical(self, devices, interleaving):
        config = self._config(devices)
        analytic, evented = _compare(
            config, profile=KEYVALUE, interleaving=interleaving, warmup=100
        )
        assert result_to_dict(evented) == result_to_dict(analytic)

    @pytest.mark.parametrize("devices", [2, 4])
    def test_device_breakdowns_match(self, devices):
        analytic, evented = _compare(self._config(devices))
        assert len(analytic.device_results) == devices
        for left, right in zip(analytic.device_results, evented.device_results):
            assert left == right
        assert analytic.fabric == evented.fabric

    def test_hash_map_identical(self):
        config = hypertrio_config().with_overrides(
            iommu_walkers=2,
            devices=DeviceConfig(count=4, sid_map="hash"),
        )
        analytic, evented = _compare(config)
        assert result_to_dict(evented) == result_to_dict(analytic)


class TestEventQueue:
    def test_time_ordering(self):
        queue = EventQueue()
        queue.schedule(5.0, EventKind.PACKET_ARRIVAL, "late")
        queue.schedule(1.0, EventKind.PACKET_ARRIVAL, "early")
        assert queue.pop().payload == "early"
        assert queue.pop().payload == "late"

    def test_install_precedes_arrival_at_same_time(self):
        queue = EventQueue()
        queue.schedule(2.0, EventKind.PACKET_ARRIVAL, "pkt")
        queue.schedule(2.0, EventKind.PREFETCH_INSTALL, "ins")
        assert queue.pop().payload == "ins"

    def test_fifo_among_equal_events(self):
        queue = EventQueue()
        queue.schedule(1.0, EventKind.PACKET_ARRIVAL, "first")
        queue.schedule(1.0, EventKind.PACKET_ARRIVAL, "second")
        assert queue.pop().payload == "first"

    def test_empty_pop_raises(self):
        with pytest.raises(IndexError):
            EventQueue().pop()

    def test_peek_time(self):
        queue = EventQueue()
        queue.schedule(3.0, EventKind.PACKET_ARRIVAL)
        assert queue.peek_time() == 3.0
        with pytest.raises(IndexError):
            EventQueue().peek_time()

    def test_len_and_bool(self):
        queue = EventQueue()
        assert not queue
        queue.schedule(1.0, EventKind.PACKET_ARRIVAL)
        assert len(queue) == 1
        assert queue
