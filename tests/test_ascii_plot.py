"""Tests for the ASCII chart renderer."""

import pytest

from repro.analysis.ascii_plot import MARKERS, AsciiChart, chart_from_columns


class TestAsciiChart:
    def test_render_contains_title_and_legend(self):
        chart = AsciiChart(width=30, height=8, title="demo chart")
        chart.add_series("base", [(1, 0.0), (2, 50.0), (3, 100.0)])
        text = chart.render()
        assert "demo chart" in text
        assert "o base" in text

    def test_axis_labels_show_bounds(self):
        chart = AsciiChart(width=30, height=8)
        chart.add_series("s", [(0, 10.0), (5, 90.0)])
        text = chart.render()
        assert "90" in text
        assert "10" in text

    def test_markers_cycle_per_series(self):
        chart = AsciiChart(width=30, height=8)
        chart.add_series("a", [(0, 0.0), (1, 1.0)])
        chart.add_series("b", [(0, 1.0), (1, 0.0)])
        text = chart.render()
        assert MARKERS[0] in text
        assert MARKERS[1] in text

    def test_extreme_points_land_on_grid_edges(self):
        chart = AsciiChart(width=10, height=5)
        chart.add_series("s", [(0, 0.0), (9, 100.0)])
        lines = chart.render().splitlines()
        grid_lines = [line for line in lines if "|" in line]
        # Highest value on the top grid row, lowest on the bottom row.
        assert "o" in grid_lines[0].split("|", 1)[1]
        assert "o" in grid_lines[-1].split("|", 1)[1]

    def test_flat_series_does_not_crash(self):
        chart = AsciiChart(width=10, height=4)
        chart.add_series("flat", [(0, 5.0), (1, 5.0)])
        assert chart.render()

    def test_log_x_requires_positive(self):
        chart = AsciiChart(log_x=True)
        chart.add_series("s", [(0, 1.0), (4, 2.0)])
        with pytest.raises(ValueError):
            chart.render()

    def test_log_x_spreads_powers_of_two(self):
        chart = AsciiChart(width=33, height=4, log_x=True)
        chart.add_series("s", [(4, 0.0), (64, 50.0), (1024, 100.0)])
        lines = [l for l in chart.render().splitlines() if "|" in l]
        middle_columns = [line.split("|", 1)[1].find("o") for line in lines]
        # The 64-tenant point sits near the horizontal middle under log-x.
        middle = [c for c in middle_columns if 0 < c < 32]
        assert middle and 8 <= middle[0] <= 24

    def test_empty_chart_rejected(self):
        with pytest.raises(ValueError):
            AsciiChart().render()

    def test_empty_series_rejected(self):
        with pytest.raises(ValueError):
            AsciiChart().add_series("s", [])

    def test_too_many_series_rejected(self):
        chart = AsciiChart()
        for index in range(len(MARKERS)):
            chart.add_series(f"s{index}", [(0, index)])
        with pytest.raises(ValueError):
            chart.add_series("overflow", [(0, 0)])


class TestChartFromColumns:
    def test_builds_all_series(self):
        chart = chart_from_columns(
            "t", [1, 2, 3], {"a": [1, 2, 3], "b": [3, 2, 1]}
        )
        text = chart.render()
        assert "a" in text and "b" in text

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            chart_from_columns("t", [1, 2], {"a": [1]})
