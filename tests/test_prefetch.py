"""Unit tests for the translation prefetching scheme."""

import pytest

from repro.core.config import PrefetchConfig
from repro.core.prefetch import IovaHistory, PrefetchUnit, SidPredictor


class TestSidPredictor:
    def test_learns_round_robin_stride(self):
        """Under RR1, the predictor converges to table[s] = (s + H) mod n."""
        predictor = SidPredictor(history_length=4)
        num_tenants = 8
        for step in range(3 * num_tenants):
            predictor.observe(step % num_tenants)
        for sid in range(num_tenants):
            assert predictor.predict(sid) == (sid + 4) % num_tenants

    def test_no_prediction_before_window_fills(self):
        predictor = SidPredictor(history_length=8)
        for sid in range(7):
            predictor.observe(sid)
        assert predictor.predict(0) is None

    def test_prediction_updates_when_pattern_changes(self):
        predictor = SidPredictor(history_length=2)
        for _ in range(4):
            predictor.observe(0)
            predictor.observe(1)
        old = predictor.predict(0)
        for _ in range(4):
            predictor.observe(0)
            predictor.observe(2)
        assert predictor.predict(0) != old or predictor.predict(0) == 0

    def test_reconfigure_clears_table(self):
        predictor = SidPredictor(history_length=2)
        for _ in range(6):
            predictor.observe(0)
            predictor.observe(1)
        assert len(predictor) > 0
        predictor.reconfigure(history_length=4)
        assert len(predictor) == 0
        assert predictor.history_length == 4

    def test_invalid_history_length(self):
        with pytest.raises(ValueError):
            SidPredictor(history_length=0)
        with pytest.raises(ValueError):
            SidPredictor(history_length=2).reconfigure(0)


class TestIovaHistory:
    def test_most_recent_newest_first(self):
        history = IovaHistory(depth=2)
        history.record(5, 0xA)
        history.record(5, 0xB)
        assert history.most_recent(5) == [0xB, 0xA]

    def test_depth_limits_history(self):
        history = IovaHistory(depth=2)
        for page in (1, 2, 3):
            history.record(5, page)
        assert history.most_recent(5) == [3, 2]

    def test_duplicate_access_moves_to_front(self):
        history = IovaHistory(depth=3)
        for page in (1, 2, 3):
            history.record(5, page)
        history.record(5, 1)
        assert history.most_recent(5) == [1, 3, 2]

    def test_tenants_are_independent(self):
        history = IovaHistory(depth=2)
        history.record(1, 0xA)
        history.record(2, 0xB)
        assert history.most_recent(1) == [0xA]
        assert history.most_recent(2) == [0xB]

    def test_unknown_tenant_is_empty(self):
        assert IovaHistory().most_recent(42) == []

    def test_forget(self):
        history = IovaHistory()
        history.record(1, 0xA)
        history.forget(1)
        assert history.most_recent(1) == []

    def test_invalid_depth(self):
        with pytest.raises(ValueError):
            IovaHistory(depth=0)


class TestPrefetchUnit:
    @pytest.fixture
    def unit(self):
        return PrefetchUnit(
            PrefetchConfig(enabled=True, buffer_entries=4, history_length=2,
                           pages_per_tenant=2)
        )

    def test_lookup_miss_counted(self, unit):
        assert unit.lookup(0, 0xBBE00) is None
        assert unit.stats.buffer_misses == 1

    def test_install_then_hit(self, unit):
        unit.install(0, 0xBBE00, 0x9000_0000, 12)
        assert unit.lookup(0, 0xBBE00) == (0x9000_0000, 12)
        assert unit.stats.buffer_hits == 1

    def test_buffer_is_shared_across_tenants(self, unit):
        for sid in range(6):
            unit.install(sid, 0xBBE00, sid, 12)
        present = sum(
            1 for sid in range(6) if unit.buffer.probe((sid, 0xBBE00)) is not None
        )
        assert present == 4  # capacity-limited, LRU

    def test_observe_and_predict_trains(self, unit):
        for _ in range(4):
            unit.observe_and_predict(0)
            unit.observe_and_predict(1)
        predicted = unit.observe_and_predict(0)
        assert predicted in (0, 1)
        assert unit.stats.predictions > 0

    def test_buffer_hit_rate(self, unit):
        unit.install(0, 1, 2, 12)
        unit.lookup(0, 1)
        unit.lookup(0, 99)
        assert unit.stats.buffer_hit_rate == pytest.approx(0.5)

    def test_note_prefetch_issued(self, unit):
        unit.note_prefetch_issued(3)
        assert unit.stats.prefetch_requests == 3
