"""Span tracing tests: protocol propagation, parenting, byte-identity.

The asyncio pieces run under ``asyncio.run`` inside synchronous tests
(the environment has no pytest-asyncio).
"""

import asyncio
import itertools

import pytest

from repro.core.config import hypertrio_config
from repro.obs import Observability
from repro.obs.export import spans_to_chrome_events, to_chrome_trace
from repro.obs.spans import NullSpanRecorder, SpanContext, SpanRecorder
from repro.runner.serialize import result_to_dict
from repro.service import protocol
from repro.service.client import ServiceClient
from repro.service.engine import ServiceEngine
from repro.service.server import ServiceServer
from repro.sim.simulator import HyperSimulator
from repro.trace.constructor import construct_trace
from repro.trace.tenant import profile_by_name

TENANTS = 8
PACKETS = 80


def make_trace(num_tenants=TENANTS, packets=PACKETS):
    return construct_trace(
        profile_by_name("mediastream"),
        num_tenants=num_tenants,
        packets_per_tenant=200_000,
        max_packets=packets,
    )


def fake_clock(step_ns=10):
    counter = itertools.count(0, step_ns)
    return lambda: next(counter)


class TestSpanContextWire:
    def test_round_trip(self):
        ctx = SpanContext(trace_id="t7", span_id="c3")
        assert SpanContext.from_wire(ctx.to_wire()) == ctx

    def test_parse_translate_without_trace_is_old_client(self):
        message = {
            "type": protocol.TRANSLATE, "seq": 0, "sid": 1,
            "giovas": [1, 2, 3],
        }
        *_, trace_ctx = protocol.parse_translate(message, None)
        assert trace_ctx is None

    def test_parse_translate_decodes_trace(self):
        message = {
            "type": protocol.TRANSLATE, "seq": 4, "sid": 1,
            "giovas": [1, 2, 3],
            "trace": {"trace_id": "t4", "span_id": "c4"},
        }
        *_, trace_ctx = protocol.parse_translate(message, None)
        assert trace_ctx == SpanContext(trace_id="t4", span_id="c4")

    @pytest.mark.parametrize(
        "trace",
        [
            "t0/c0",                              # not an object
            {"trace_id": "t0"},                   # missing span_id
            {"trace_id": 7, "span_id": "c0"},     # non-string id
            {"trace_id": "t0", "span_id": None},
        ],
    )
    def test_malformed_trace_is_a_protocol_error(self, trace):
        message = {
            "type": protocol.TRANSLATE, "seq": 0, "sid": 1,
            "giovas": [1, 2, 3], "trace": trace,
        }
        with pytest.raises(protocol.ProtocolError):
            protocol.parse_translate(message, None)

    def test_trace_is_a_negotiated_feature(self):
        assert "trace" in protocol.PROTOCOL_FEATURES

    def test_client_message_carries_trace_only_when_enabled(self):
        from repro.trace.records import PacketRecord

        packet = PacketRecord(sid=0, giovas=(1, 2, 3), size_bytes=1500)
        plain = ServiceClient(trace=False)._translate_message(packet, 9, 0)
        traced = ServiceClient(trace=True)._translate_message(packet, 9, 0)
        assert "trace" not in plain
        assert traced["trace"] == {"trace_id": "t9", "span_id": "c9"}


class TestSpanRecorder:
    def test_ids_are_deterministic(self):
        a, b = SpanRecorder(clock=fake_clock()), SpanRecorder(clock=fake_clock())
        for recorder in (a, b):
            recorder.finish(recorder.start("x"))
            recorder.finish(recorder.start("y"))
        assert [s.span_id for s in a.spans] == [s.span_id for s in b.spans]
        assert [s.trace_id for s in a.spans] == [s.trace_id for s in b.spans]

    def test_parenting_inherits_trace_and_sid(self):
        recorder = SpanRecorder(clock=fake_clock())
        root = recorder.start("wire.read", trace_id="t0", parent_id="c0", sid=5)
        child = recorder.start("dispatch", parent=root)
        assert child.trace_id == "t0"
        assert child.parent_id == root.span_id
        assert child.sid == 5
        recorder.finish(child)
        recorder.finish(root, queued=True)
        assert root.attrs["queued"] is True
        assert root.dur_ns > 0

    def test_add_records_explicit_interval(self):
        recorder = SpanRecorder(clock=fake_clock())
        span = recorder.add("walk", "t0", "s1", start_ns=100, end_ns=250, sid=2)
        assert span.dur_ns == 150
        assert recorder.find("walk") == [span]

    def test_max_spans_bounds_memory(self):
        recorder = SpanRecorder(clock=fake_clock(), max_spans=2)
        for _ in range(4):
            recorder.finish(recorder.start("x"))
        assert len(recorder.spans) == 2
        assert recorder.dropped_spans == 2

    def test_null_recorder_is_disabled(self):
        null = NullSpanRecorder()
        assert null.enabled is False
        assert null.start("x") is None
        assert null.finish(None) is None
        assert Observability(spans=null).spans is None


def serve_replay(observability=None, trace_flag=True, packets=PACKETS):
    """Replay a trace against a live in-process server; returns the server."""

    async def run():
        trace = make_trace(packets=packets)
        engine = ServiceEngine(
            hypertrio_config(), trace, observability=observability
        )
        spans = getattr(observability, "spans", None) if observability else None
        server = ServiceServer(engine, spans=spans)
        await server.start()
        client = ServiceClient("127.0.0.1", server.port, trace=trace_flag)
        hello = await client.connect()
        outcomes = await client.replay(trace.packets, window=16)
        await client.close()
        await server.shutdown()
        return server, hello, outcomes

    return asyncio.run(run())


class TestServiceSpanTree:
    def test_hello_advertises_features(self):
        _, hello, _ = serve_replay(observability=None, trace_flag=False)
        assert set(protocol.PROTOCOL_FEATURES) <= set(hello["features"])

    def test_replay_produces_parented_trees(self):
        obs = Observability.profiling()
        server, _, outcomes = serve_replay(observability=obs)
        packets = PACKETS
        assert len(outcomes) == packets

        spans = server.spans
        assert spans is obs.spans
        assert len(spans.find("wire.read")) == packets
        trees = spans.by_trace()
        # Client ids derive from seq, so request 0 lives in trace "t0".
        tree = {span.name: span for span in trees["t0"]}
        wire = tree["wire.read"]
        assert wire.parent_id == "c0"  # parented under the client span
        assert tree["admission"].parent_id == wire.span_id
        dispatch = tree["dispatch"]
        assert dispatch.parent_id == wire.span_id
        step = tree["engine.step"]
        assert step.parent_id == dispatch.span_id
        # Phase children are synthesized under the step from the
        # profiler's deltas; lookup happens on every request.
        assert tree["cache.lookup"].parent_id == step.span_id
        assert tree["cache.lookup"].start_ns >= step.start_ns
        assert dispatch.attrs["outcome"] in ("accepted", "dropped")

    def test_old_client_still_gets_server_side_trees(self):
        obs = Observability.profiling()
        server, _, outcomes = serve_replay(observability=obs, trace_flag=False)
        assert len(outcomes) == PACKETS
        wire_spans = server.spans.find("wire.read")
        assert len(wire_spans) == PACKETS
        # No propagated context: the tree roots server-side, unparented.
        assert all(span.parent_id is None for span in wire_spans)

    def test_disabled_spans_leave_no_recorder_attached(self):
        server, _, outcomes = serve_replay(
            observability=Observability.metrics_only()
        )
        assert server.spans is None
        assert len(outcomes) == PACKETS


class TestByteIdentity:
    def test_results_identical_with_tracing_disabled(self):
        baseline = HyperSimulator(hypertrio_config(), make_trace()).run(
            warmup_packets=0
        )
        disabled = HyperSimulator(
            hypertrio_config(), make_trace(), observability=Observability.disabled()
        ).run(warmup_packets=0)
        assert result_to_dict(baseline) == result_to_dict(disabled)
        assert "phase_profile" not in result_to_dict(baseline)

    def test_profiling_changes_no_modeled_output(self):
        plain = HyperSimulator(hypertrio_config(), make_trace()).run(
            warmup_packets=0
        )
        profiled = HyperSimulator(
            hypertrio_config(), make_trace(),
            observability=Observability.profiling(spans=False, metrics=False),
        ).run(warmup_packets=0)
        document = result_to_dict(profiled)
        assert document["phase_profile"]  # breakdown present when enabled
        del document["phase_profile"]
        assert document == result_to_dict(plain)


class TestSpanExport:
    def test_spans_export_as_complete_events(self):
        recorder = SpanRecorder(clock=fake_clock(1000))
        root = recorder.start("wire.read", trace_id="t0", sid=3)
        child = recorder.start("dispatch", parent=root)
        recorder.finish(child)
        recorder.finish(root)
        open_span = recorder.start("never.finished", trace_id="t0")
        assert open_span.end_ns is None

        events = [
            event
            for event in spans_to_chrome_events(recorder.spans)
            if event["ph"] == "X"
        ]
        assert len(events) == 2  # open spans are skipped
        by_name = {event["name"]: event for event in events}
        assert by_name["dispatch"]["args"]["trace_id"] == "t0"
        assert by_name["dispatch"]["args"]["parent_id"] == root.span_id
        assert by_name["wire.read"]["dur"] >= by_name["dispatch"]["dur"]

    def test_spans_join_the_chrome_document(self):
        recorder = SpanRecorder(clock=fake_clock(1000))
        recorder.finish(recorder.start("wire.read", trace_id="t0", sid=1))
        document = to_chrome_trace([], spans=recorder.spans)
        span_events = [
            event for event in document["traceEvents"] if event.get("ph") == "X"
        ]
        assert len(span_events) == 1
