"""The vectorized batch engine must be byte-identical to the analytic one.

Three layers of evidence:

* the pinned ``devices=1`` goldens (``tests/data/golden_devices1.json``)
  recomputed through :class:`VectorizedSimulator` key by key;
* a property-based cross-engine matrix over random small configurations
  (policies, PTB depths, bounded walkers, interleavings, seeds) comparing
  fully serialised results;
* targeted regimes the batch path optimises specially — the drop-heavy
  PTB-overflow case and the block-cycle leap — plus the refusal matrix
  (fault plans, checkpointing, resume raise
  :class:`VectorizedUnsupportedError` instead of silently degrading).
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import TlbConfig, base_config, hypertrio_config
from repro.runner.serialize import result_to_dict
from repro.sim.simulator import HyperSimulator, simulate
from repro.sim.vectorized import (
    VectorizedSimulator,
    VectorizedUnsupportedError,
    simulate_vectorized,
)
from repro.trace.constructor import construct_trace
from repro.trace.tenant import profile_by_name
from tests.golden_common import GOLDEN_PATH, GOLDEN_POINTS, _build_config


def _trace(benchmark="mediastream", tenants=8, packets=900,
           interleaving="RR1", seed=0):
    return construct_trace(
        profile_by_name(benchmark),
        num_tenants=tenants,
        packets_per_tenant=100_000,
        interleaving=interleaving,
        seed=seed,
        max_packets=packets,
    )


def _config(policy="lfu", ptb=1, walkers=None):
    """Base geometry with every TLB level on ``policy``."""

    def tlb(template):
        return TlbConfig(
            num_entries=template.num_entries,
            ways=template.ways,
            num_partitions=template.num_partitions,
            policy=policy,
        )

    config = base_config()
    return config.with_overrides(
        devtlb=tlb(config.devtlb),
        l2_tlb=tlb(config.l2_tlb),
        l3_tlb=tlb(config.l3_tlb),
        ptb_entries=ptb,
        iommu_walkers=walkers,
    )


def _dump(result):
    return json.dumps(result_to_dict(result), sort_keys=True)


def _assert_parity(config, **trace_kwargs):
    warmup = trace_kwargs.pop("warmup", 0)
    analytic = HyperSimulator(config, _trace(**trace_kwargs)).run(
        warmup_packets=warmup
    )
    vectorized = VectorizedSimulator(config, _trace(**trace_kwargs)).run(
        warmup_packets=warmup
    )
    assert _dump(analytic) == _dump(vectorized)
    return analytic, vectorized


class TestGoldenParity:
    """The pinned goldens, recomputed through the vectorized engine."""

    @pytest.fixture(scope="class")
    def golden(self):
        return json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))

    @pytest.mark.parametrize("name", sorted(GOLDEN_POINTS))
    def test_point_matches_pinned_golden(self, golden, name):
        spec = GOLDEN_POINTS[name]
        trace = construct_trace(
            profile_by_name(spec["benchmark"]),
            num_tenants=spec["tenants"],
            packets_per_tenant=200_000,
            interleaving=spec["interleaving"],
            seed=0,
            max_packets=spec["packets"],
        )
        config = _build_config(spec["config"])
        result = VectorizedSimulator(config, trace).run(
            warmup_packets=spec["warmup"]
        )
        fresh = json.loads(json.dumps(result_to_dict(result)))
        pinned = golden["points"][name]
        assert set(fresh) == set(pinned), name
        for key in pinned:
            assert fresh[key] == pinned[key], f"{name}: field {key!r} diverged"


class TestCrossEngineProperty:
    """Random small configurations: serialised results must be identical."""

    @settings(max_examples=15, deadline=None)
    @given(
        benchmark=st.sampled_from(["mediastream", "iperf3", "keyvalue"]),
        tenants=st.sampled_from([2, 4, 8]),
        interleaving=st.sampled_from(["RR1", "RR2", "RAND1"]),
        policy=st.sampled_from(["lru", "lfu", "fifo"]),
        ptb=st.sampled_from([1, 4]),
        walkers=st.sampled_from([None, 2]),
        seed=st.integers(min_value=0, max_value=3),
    )
    def test_random_config_identical(
        self, benchmark, tenants, interleaving, policy, ptb, walkers, seed
    ):
        _assert_parity(
            _config(policy=policy, ptb=ptb, walkers=walkers),
            benchmark=benchmark,
            tenants=tenants,
            packets=600,
            interleaving=interleaving,
            seed=seed,
        )


class TestTargetedRegimes:
    def test_drop_heavy_ptb_overflow(self):
        analytic, _ = _assert_parity(
            _config(policy="lfu", ptb=1),
            benchmark="keyvalue",
            tenants=16,
            packets=1500,
        )
        assert analytic.packets.dropped > 0
        assert analytic.packets.drop_causes.get("ptb_overflow", 0) > 0

    def test_block_cycle_leap_engages_and_stays_identical(self):
        # Deterministic per-tenant streams (iperf3) over a round-robin
        # interleaving settle into a steady state the engine detects and
        # leaps over; the leap must not move a single serialised byte.
        config = _config(policy="lru")
        trace_kwargs = dict(benchmark="iperf3", tenants=32, packets=6400)
        analytic = HyperSimulator(config, _trace(**trace_kwargs)).run()
        simulator = VectorizedSimulator(config, _trace(**trace_kwargs))
        vectorized = simulator.run()
        assert _dump(analytic) == _dump(vectorized)
        assert simulator.batch_stats["mode"] == "batch"
        assert simulator.batch_stats["blocks_leaped"] > 0

    def test_warmup_accounting_identical(self):
        _assert_parity(_config(), packets=1200, warmup=300)

    def test_prefetch_config_falls_back_with_reason(self):
        # HyperTRIO's prefetcher couples cache state to packet timing, so
        # the batch two-stage split is unsound there; the engine must
        # fall back to the analytic loop (parity by construction) and
        # say why.
        config = hypertrio_config()
        analytic = HyperSimulator(config, _trace()).run()
        simulator = VectorizedSimulator(config, _trace())
        vectorized = simulator.run()
        assert _dump(analytic) == _dump(vectorized)
        assert simulator.batch_stats["mode"] == "fallback"
        assert simulator.batch_stats["reason"]


class TestRefusals:
    def test_fault_plan_refused_at_construction(self):
        from repro.faults import FaultPlan, TranslationFaultSpec

        plan = FaultPlan(
            seed=0,
            translation_faults=(TranslationFaultSpec(probability=0.5),),
        )
        with pytest.raises(VectorizedUnsupportedError):
            VectorizedSimulator(_config(), _trace(), fault_plan=plan)

    def test_checkpointing_refused(self, tmp_path):
        simulator = VectorizedSimulator(_config(), _trace())
        with pytest.raises(VectorizedUnsupportedError):
            simulator.run(
                checkpoint_every=100, checkpoint_path=tmp_path / "x.ckpt"
            )

    def test_resume_refused(self):
        with pytest.raises(VectorizedUnsupportedError):
            simulate_vectorized(_config(), None, resume_from="whatever.ckpt")


class TestEngineDispatch:
    def test_simulate_engine_vectorized_matches_analytic(self):
        analytic = simulate(_config(), _trace(), engine="analytic")
        vectorized = simulate(_config(), _trace(), engine="vectorized")
        assert _dump(analytic) == _dump(vectorized)

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown engine"):
            simulate(_config(), _trace(), engine="quantum")


class TestJobSpecEngine:
    def test_default_engine_leaves_hash_unchanged(self):
        from repro.analysis.scale import RunScale
        from repro.runner.spec import JobSpec

        scale = RunScale(
            name="t", tenant_counts=(4,), interleavings=("RR1",),
            benchmarks=("mediastream",), max_packets=500,
        )
        plain = JobSpec.from_point(_config(), "mediastream", 4, "RR1", scale)
        explicit = JobSpec.from_point(
            _config(), "mediastream", 4, "RR1", scale, engine="analytic"
        )
        assert "engine" not in plain.to_dict()
        assert plain.spec_hash == explicit.spec_hash

    def test_vectorized_engine_changes_hash_and_label(self):
        from repro.analysis.scale import RunScale
        from repro.runner.spec import JobSpec

        scale = RunScale(
            name="t", tenant_counts=(4,), interleavings=("RR1",),
            benchmarks=("mediastream",), max_packets=500,
        )
        plain = JobSpec.from_point(_config(), "mediastream", 4, "RR1", scale)
        vector = JobSpec.from_point(
            _config(), "mediastream", 4, "RR1", scale, engine="vectorized"
        )
        assert vector.to_dict()["engine"] == "vectorized"
        assert vector.spec_hash != plain.spec_hash
        assert vector.label.endswith("/vectorized")
        round_tripped = JobSpec.from_dict(vector.to_dict())
        assert round_tripped.spec_hash == vector.spec_hash


class TestServiceBatch:
    def test_submit_batch_matches_sequential_submit(self):
        from repro.service.engine import ServiceEngine

        config = _config()
        trace = _trace(tenants=8, packets=1200)
        packets = list(trace.packets)

        sequential = ServiceEngine(config, trace)
        outcomes_seq = [sequential.submit(p) for p in packets]
        result_seq = sequential.flush()

        batched = ServiceEngine(config, trace)
        outcomes_bat = []
        step = 37  # deliberately not a divisor: exercises a ragged tail
        for start in range(0, len(packets), step):
            outcomes_bat.extend(
                batched.submit_batch(packets[start:start + step])
            )
        result_bat = batched.flush()

        assert [o.__dict__ for o in outcomes_seq] == [
            o.__dict__ for o in outcomes_bat
        ]
        assert _dump(result_seq) == _dump(result_bat)

    def test_submit_batch_rejects_unknown_sid_before_any_state_change(self):
        from repro.service.engine import ServiceEngine, UnknownTenantError

        config = _config()
        trace = _trace(tenants=4, packets=400)
        packets = list(trace.packets)
        bad = packets[0].__class__(
            sid=9999, giovas=packets[0].giovas,
            size_bytes=packets[0].size_bytes,
        )
        engine = ServiceEngine(config, trace)
        with pytest.raises(UnknownTenantError):
            engine.submit_batch([packets[0], bad, packets[1]])
        # Total prevalidation: the good packets before the bad one must
        # not have been translated either.
        assert engine.processed == 0


class TestCliEngineFlag:
    def test_vectorized_with_fault_plan_exits_2(self, capsys):
        from repro.cli import main

        code = main([
            "simulate", "--tenants", "2", "--packets", "200",
            "--config", "base", "--engine", "vectorized",
            "--fault-plan", "plan.json",
        ])
        assert code == 2
        assert "does not support --fault-plan" in capsys.readouterr().err

    def test_vectorized_with_checkpointing_exits_2(self, capsys):
        from repro.cli import main

        code = main([
            "simulate", "--tenants", "2", "--packets", "200",
            "--config", "base", "--engine", "vectorized",
            "--checkpoint-every", "100",
        ])
        assert code == 2
        assert "does not support --checkpoint-every" in capsys.readouterr().err

    def test_vectorized_simulate_runs(self):
        from repro.cli import main

        assert main([
            "simulate", "--tenants", "2", "--packets", "400",
            "--config", "base", "--engine", "vectorized",
        ]) == 0
