"""Unit tests for simulator components: link, resources, oracle."""

import pytest

from repro.sim.link import IoLink
from repro.sim.oracle import FutureOracle, devtlb_key_sequence, oracle_for_trace
from repro.sim.resources import ResourcePool, UnboundedPool
from repro.trace.records import PacketRecord


class TestIoLink:
    def test_interarrival_at_200g(self):
        link = IoLink(bandwidth_gbps=200.0, packet_bytes=1542)
        assert link.interarrival_ns == pytest.approx(61.68)

    def test_interarrival_at_10g(self):
        link = IoLink(bandwidth_gbps=10.0, packet_bytes=1542)
        assert link.interarrival_ns == pytest.approx(1233.6)

    def test_slot_at_or_after(self):
        link = IoLink(bandwidth_gbps=200.0)
        slot = link.slot_at_or_after(0.0, 100.0)
        assert slot >= 100.0
        assert slot % link.interarrival_ns == pytest.approx(0.0, abs=1e-9)

    def test_slot_before_origin(self):
        link = IoLink(bandwidth_gbps=200.0)
        assert link.slot_at_or_after(50.0, 10.0) == 50.0

    def test_packets_in_duration(self):
        link = IoLink(bandwidth_gbps=200.0)
        assert link.packets_in(616.8) == 10

    def test_bandwidth_for_packets(self):
        link = IoLink(bandwidth_gbps=200.0)
        gbps = link.bandwidth_for_packets(10, 10 * link.interarrival_ns)
        assert gbps == pytest.approx(200.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            IoLink(bandwidth_gbps=0)
        with pytest.raises(ValueError):
            IoLink(bandwidth_gbps=1, packet_bytes=0)
        with pytest.raises(ValueError):
            IoLink(bandwidth_gbps=1).packets_in(-1)


class TestResourcePool:
    def test_serves_immediately_when_free(self):
        pool = ResourcePool(capacity=2)
        start, done = pool.acquire(10.0, 5.0)
        assert (start, done) == (10.0, 15.0)

    def test_queues_when_busy(self):
        pool = ResourcePool(capacity=1)
        pool.acquire(0.0, 100.0)
        start, done = pool.acquire(10.0, 5.0)
        assert start == 100.0
        assert done == 105.0

    def test_parallel_capacity(self):
        pool = ResourcePool(capacity=3)
        completions = [pool.acquire(0.0, 100.0)[1] for _ in range(3)]
        assert completions == [100.0, 100.0, 100.0]

    def test_queue_delay_accounting(self):
        pool = ResourcePool(capacity=1)
        pool.acquire(0.0, 100.0)
        pool.acquire(0.0, 100.0)
        assert pool.mean_queue_delay_ns == pytest.approx(50.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            ResourcePool(0)
        with pytest.raises(ValueError):
            ResourcePool(1).acquire(0.0, -1.0)


class TestUnboundedPool:
    def test_never_queues(self):
        pool = UnboundedPool()
        for _ in range(100):
            start, done = pool.acquire(5.0, 10.0)
            assert (start, done) == (5.0, 15.0)
        assert pool.mean_queue_delay_ns == 0.0


class TestFutureOracle:
    def test_key_sequence_expands_packets(self):
        packets = [PacketRecord(sid=1, giovas=(0x1000, 0x2000, 0x3000))]
        keys = devtlb_key_sequence(packets)
        assert keys == [(1, 1), (1, 2), (1, 3)]

    def test_next_use_reports_future_position(self):
        oracle = FutureOracle(["a", "b", "a", "c"])
        assert oracle.next_use("a") == 0
        oracle.consume("a")
        assert oracle.next_use("a") == 2
        oracle.consume("b")
        oracle.consume("a")
        assert oracle.next_use("a") is None

    def test_consume_order_enforced(self):
        oracle = FutureOracle(["a", "b"])
        with pytest.raises(ValueError):
            oracle.consume("b")

    def test_consume_past_end(self):
        oracle = FutureOracle(["a"])
        oracle.consume("a")
        with pytest.raises(RuntimeError):
            oracle.consume("a")

    def test_unknown_key_never_used(self):
        oracle = FutureOracle(["a"])
        assert oracle.next_use("zzz") is None

    def test_oracle_for_trace(self):
        packets = [
            PacketRecord(sid=0, giovas=(0x1000, 0x2000, 0x3000)),
            PacketRecord(sid=0, giovas=(0x1000, 0x2000, 0x3000)),
        ]
        oracle = oracle_for_trace(packets)
        assert oracle.length == 6
        oracle.consume((0, 1))
        assert oracle.next_use((0, 1)) == 3
