"""Integration tests asserting the paper's qualitative results (small scale).

These are the repository's contract with the paper: each test checks one
comparative *shape* from the evaluation section at a size small enough for
the unit-test suite.  The full-scale versions live in benchmarks/.
"""

import dataclasses

import pytest

from repro.analysis.experiments import partitioned_only_config
from repro.core.config import TlbConfig, base_config, hypertrio_config
from repro.sim.simulator import HyperSimulator
from repro.trace.constructor import construct_trace
from repro.trace.tenant import IPERF3, MEDIASTREAM


def run(config, benchmark=MEDIASTREAM, tenants=64, packets=3000,
        interleaving="RR1"):
    trace = construct_trace(
        benchmark,
        num_tenants=tenants,
        packets_per_tenant=200_000,
        interleaving=interleaving,
        max_packets=packets,
    )
    return HyperSimulator(config, trace).run(warmup_packets=packets // 4)


class TestSection2Motivation:
    def test_utilization_collapses_with_tenant_count(self):
        """Figures 5/9: the base design cannot scale past a handful of
        tenants."""
        few = run(base_config(), tenants=2, packets=1200)
        many = run(base_config(), tenants=64, packets=1200)
        assert few.link_utilization > 0.8
        assert many.link_utilization < 0.2

    def test_collapse_is_translation_contention(self):
        """The collapse coincides with the DevTLB hit rate falling."""
        few = run(base_config(), tenants=2, packets=1200)
        many = run(base_config(), tenants=64, packets=1200)
        assert few.hit_rate("devtlb") > 0.95
        assert many.hit_rate("devtlb") < 0.4


class TestFigure10Headline:
    def test_hypertrio_sustains_base_collapses(self):
        base = run(base_config(), tenants=64)
        hyper = run(hypertrio_config(), tenants=64)
        assert base.link_utilization < 0.15
        assert hyper.link_utilization > 0.85

    def test_rr4_beats_rr1_for_base_at_scale(self):
        """Section V-B: translations are reused inside a burst, so RR4
        yields higher Base bandwidth than RR1 at high tenant counts."""
        rr1 = run(base_config(), tenants=64, interleaving="RR1")
        rr4 = run(base_config(), tenants=64, interleaving="RR4")
        assert rr4.achieved_bandwidth_gbps > rr1.achieved_bandwidth_gbps

    def test_rand1_is_hardest_for_hypertrio(self):
        """Section V-B: RAND1 defeats the SID predictor, costing
        utilisation relative to RR orders."""
        rr1 = run(hypertrio_config(), tenants=64, interleaving="RR1")
        rand1 = run(hypertrio_config(), tenants=64, interleaving="RAND1")
        assert rand1.link_utilization < rr1.link_utilization


class TestFigure11Insufficiency:
    def test_bigger_devtlb_does_not_scale(self):
        """Figure 11a: 16x the entries, same collapse at scale."""
        big = base_config().with_overrides(
            devtlb=TlbConfig(num_entries=1024, ways=8, policy="lfu")
        )
        result = run(big, tenants=256, packets=3000)
        assert result.link_utilization < 0.3

    def test_lfu_at_least_matches_lru_midscale(self):
        """Figure 11b: LFU >= LRU where the frequency groups matter."""
        lfu = base_config().with_overrides(
            devtlb=TlbConfig(num_entries=64, ways=8, policy="lfu")
        )
        lru = base_config().with_overrides(
            devtlb=TlbConfig(num_entries=64, ways=8, policy="lru")
        )
        lfu_result = run(lfu, benchmark=IPERF3, tenants=16, packets=2000)
        lru_result = run(lru, benchmark=IPERF3, tenants=16, packets=2000)
        assert (
            lfu_result.achieved_bandwidth_gbps
            >= 0.9 * lru_result.achieved_bandwidth_gbps
        )

    def test_ideal_fully_associative_oracle_still_collapses(self):
        """Figure 11c: when tenants x active-set exceeds the entries,
        even Belady on a fully associative DevTLB misses constantly."""
        ideal = base_config().with_overrides(
            devtlb=TlbConfig(
                num_entries=64, ways=64, policy="oracle", fully_associative=True
            )
        )
        result = run(ideal, tenants=64, packets=2000)
        assert result.link_utilization < 0.35


class TestFigure12Mechanisms:
    def test_partitioning_alone_insufficient_at_scale(self):
        result = run(partitioned_only_config(), tenants=256, packets=3000)
        assert result.link_utilization < 0.6

    def test_ptb_buys_a_large_factor(self):
        """Figure 12b: PTB=32 vs PTB=1 on the partitioned design."""
        small = run(partitioned_only_config(), tenants=256, packets=3000)
        large = run(
            partitioned_only_config().with_overrides(ptb_entries=32),
            tenants=256,
            packets=3000,
        )
        assert large.achieved_bandwidth_gbps > 2 * small.achieved_bandwidth_gbps

    def test_prefetch_closes_the_gap(self):
        """Figure 12c: prefetching on top of PTB32 + partitioning."""
        without = run(
            partitioned_only_config().with_overrides(ptb_entries=32),
            tenants=256,
            packets=4000,
        )
        with_prefetch = run(hypertrio_config(), tenants=256, packets=4000)
        assert (
            with_prefetch.link_utilization
            > without.link_utilization + 0.1
        )
        assert with_prefetch.prefetch_supplied_fraction > 0.3


class TestPrefetchMechanics:
    def test_prefetcher_inactive_without_predictions(self):
        """RAND order at small scale: predictions are noise, and the
        prefetcher must not harm correctness (utilisation stays sane)."""
        result = run(hypertrio_config(), tenants=32, packets=2000,
                     interleaving="RAND1")
        assert 0.0 < result.link_utilization <= 1.0

    def test_history_overshoot_degrades(self):
        """Section V-D: the history length has an interior optimum."""
        tuned = hypertrio_config()
        overshoot = tuned.with_overrides(
            prefetch=dataclasses.replace(tuned.prefetch, history_length=200)
        )
        good = run(tuned, tenants=64, packets=3000)
        bad = run(overshoot, tenants=64, packets=3000)
        assert good.link_utilization >= bad.link_utilization
