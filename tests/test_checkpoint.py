"""Checkpoint/restore: resumed runs are byte-identical to uninterrupted ones.

The contract under test (see ``src/repro/sim/checkpoint.py``):

* saving a checkpoint is pure observation — enabling ``checkpoint_every``
  never changes the result (pinned against the golden file for the
  analytic engine, against a fresh baseline for the DES twin);
* restoring a snapshot and running to completion produces a
  :class:`~repro.core.results.SimulationResult` whose serialised form is
  *byte-identical* to the uninterrupted run's — across engines, prefetch
  and partitioning settings, fault plans, and observability;
* a cooperative interrupt flushes a final snapshot and raises
  :class:`SimulationInterrupted` carrying its path;
* corrupt, truncated, version-skewed, wrong-engine, or wrong-config
  checkpoints are rejected with :class:`CheckpointError`, never silently
  resumed.
"""

import json
import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import base_config, hypertrio_config
from repro.obs import Observability
from repro.obs import events as ev
from repro.runner.serialize import result_to_dict
from repro.sim import checkpoint as ckpt
from repro.sim.des import simulate_evented
from repro.sim.simulator import simulate
from repro.trace.constructor import construct_trace
from repro.trace.tenant import profile_by_name

from tests.golden_common import GOLDEN_PATH, GOLDEN_POINTS, compute_golden_point


def small_trace(benchmark="mediastream", tenants=4, packets=600,
                interleaving="RR1", seed=0):
    return construct_trace(
        profile_by_name(benchmark),
        num_tenants=tenants,
        packets_per_tenant=2_000,
        interleaving=interleaving,
        seed=seed,
        max_packets=packets,
    )


def result_bytes(result) -> bytes:
    """Canonical serialised form — equality here is byte-identity."""
    return json.dumps(result_to_dict(result), sort_keys=True).encode()


ENGINES = {"analytic": simulate, "event": simulate_evented}


@pytest.fixture(autouse=True)
def _clean_interrupt_flag():
    ckpt.clear_interrupt()
    yield
    ckpt.clear_interrupt()


# ----------------------------------------------------------------------
# Resume byte-identity
# ----------------------------------------------------------------------

class TestResumeIdentity:
    @pytest.mark.parametrize("engine", sorted(ENGINES))
    def test_resume_is_byte_identical(self, engine, tmp_path):
        run = ENGINES[engine]
        trace = small_trace()
        config = hypertrio_config()
        baseline = run(config, trace, warmup_packets=100)
        path = tmp_path / "run.ckpt"
        checkpointed = run(
            config, small_trace(), warmup_packets=100,
            checkpoint_every=150, checkpoint_path=path,
        )
        # Periodic snapshotting is pure observation.
        assert result_bytes(checkpointed) == result_bytes(baseline)
        # The file left behind is the last periodic snapshot; replaying
        # the tail from it reproduces the run byte for byte.
        assert path.exists()
        resumed = run(config, None, resume_from=path)
        assert result_bytes(resumed) == result_bytes(baseline)

    @pytest.mark.parametrize("engine", sorted(ENGINES))
    def test_resume_with_fault_plan(self, engine, tmp_path):
        from repro.faults import (
            FaultPlan,
            InvalidationStormSpec,
            LatencySpikeSpec,
            TranslationFaultSpec,
        )

        plan = FaultPlan(
            seed=7,
            translation_faults=(TranslationFaultSpec(probability=0.01),),
            invalidation_storms=(InvalidationStormSpec(sid=1, at_ns=50_000.0),),
            latency_spikes=(
                LatencySpikeSpec(
                    target="dram", start_ns=0.0, end_ns=200_000.0,
                    extra_ns=40.0,
                ),
            ),
        )
        run = ENGINES[engine]
        config = hypertrio_config()
        baseline = run(config, small_trace(), warmup_packets=50,
                       fault_plan=plan)
        path = tmp_path / "faulted.ckpt"
        run(config, small_trace(), warmup_packets=50, fault_plan=plan,
            checkpoint_every=200, checkpoint_path=path)
        resumed = run(config, None, resume_from=path)
        assert result_bytes(resumed) == result_bytes(baseline)

    def test_checkpoint_every_zero_writes_nothing(self, tmp_path):
        trace = small_trace(packets=300)
        baseline = simulate(hypertrio_config(), trace, warmup_packets=50)
        fresh = simulate(
            hypertrio_config(), small_trace(packets=300), warmup_packets=50,
            checkpoint_every=0,
        )
        assert result_bytes(fresh) == result_bytes(baseline)
        assert list(tmp_path.iterdir()) == []

    def test_save_leaves_no_temp_files(self, tmp_path):
        path = tmp_path / "run.ckpt"
        simulate(
            hypertrio_config(), small_trace(packets=300), warmup_packets=50,
            checkpoint_every=100, checkpoint_path=path,
        )
        assert sorted(p.name for p in tmp_path.iterdir()) == ["run.ckpt"]


# ----------------------------------------------------------------------
# Property: checkpoint anywhere, restore exactly
# ----------------------------------------------------------------------

CONFIGS = {
    # No prefetch, unpartitioned TLBs vs the full prefetch + partitioned
    # HyperTRIO design — the two ends of the state-richness spectrum.
    "base": base_config,
    "hypertrio": hypertrio_config,
}


class TestCheckpointProperty:
    @settings(max_examples=8, deadline=None)
    @given(
        engine=st.sampled_from(sorted(ENGINES)),
        config_name=st.sampled_from(sorted(CONFIGS)),
        benchmark=st.sampled_from(["mediastream", "iperf3", "keyvalue"]),
        tenants=st.sampled_from([2, 4]),
        packets=st.integers(min_value=120, max_value=400),
        every=st.integers(min_value=17, max_value=97),
        seed=st.integers(min_value=0, max_value=3),
    )
    def test_restore_equals_uninterrupted(
        self, tmp_path_factory, engine, config_name, benchmark, tenants,
        packets, every, seed,
    ):
        ckpt.clear_interrupt()
        run = ENGINES[engine]
        config = CONFIGS[config_name]()
        make = lambda: small_trace(  # noqa: E731 - tiny local factory
            benchmark=benchmark, tenants=tenants, packets=packets, seed=seed
        )
        baseline = run(config, make(), warmup_packets=packets // 4)
        path = tmp_path_factory.mktemp("ckpt") / "point.ckpt"
        checkpointed = run(
            config, make(), warmup_packets=packets // 4,
            checkpoint_every=every, checkpoint_path=path,
        )
        assert result_bytes(checkpointed) == result_bytes(baseline)
        if path.exists():  # a barrier at a multiple of ``every`` was hit
            resumed = run(config, None, resume_from=path)
            assert result_bytes(resumed) == result_bytes(baseline)


# ----------------------------------------------------------------------
# Cooperative interrupt
# ----------------------------------------------------------------------

class TestInterrupt:
    @pytest.mark.parametrize("engine", sorted(ENGINES))
    def test_interrupt_flushes_snapshot_then_resumes(self, engine, tmp_path):
        run = ENGINES[engine]
        config = hypertrio_config()
        baseline = run(config, small_trace(), warmup_packets=100)
        path = tmp_path / "stop.ckpt"

        def stop_after_first_save(packets_done, saved_path):
            ckpt.request_interrupt()

        with pytest.raises(ckpt.SimulationInterrupted) as info:
            run(
                config, small_trace(), warmup_packets=100,
                checkpoint_every=100, checkpoint_path=path,
                checkpoint_hook=stop_after_first_save,
            )
        stop = info.value
        assert stop.checkpoint_path == str(path)
        assert 0 < stop.packets_done < 600
        ckpt.clear_interrupt()
        resumed = run(config, None, resume_from=path)
        assert result_bytes(resumed) == result_bytes(baseline)

    def test_interrupted_exception_survives_pickling(self):
        error = ckpt.SimulationInterrupted(
            "stopped", packets_done=42, checkpoint_path="/tmp/x.ckpt"
        )
        clone = pickle.loads(pickle.dumps(error))
        assert clone.packets_done == 42
        assert clone.checkpoint_path == "/tmp/x.ckpt"
        assert str(clone) == "stopped"

    def test_signal_handlers_set_flag_and_restore(self):
        import os
        import signal

        previous = ckpt.install_signal_handlers(signals=(signal.SIGUSR1,))
        try:
            assert not ckpt.interrupt_requested()
            os.kill(os.getpid(), signal.SIGUSR1)
            assert ckpt.interrupt_requested()
        finally:
            ckpt.restore_signal_handlers(previous)
        assert signal.getsignal(signal.SIGUSR1) == previous[signal.SIGUSR1]


# ----------------------------------------------------------------------
# Validation and rejection
# ----------------------------------------------------------------------

class TestCheckpointValidation:
    def make_checkpoint(self, tmp_path, engine="analytic"):
        run = ENGINES[engine]
        path = tmp_path / "valid.ckpt"
        run(
            hypertrio_config(), small_trace(packets=200), warmup_packets=50,
            checkpoint_every=100, checkpoint_path=path,
        )
        assert path.exists()
        return path

    def test_missing_file(self, tmp_path):
        with pytest.raises(ckpt.CheckpointError, match="not found"):
            ckpt.resume_simulation(tmp_path / "nope.ckpt")

    def test_bad_magic(self, tmp_path):
        path = tmp_path / "garbage.ckpt"
        path.write_bytes(b"not a checkpoint at all")
        with pytest.raises(ckpt.CheckpointError, match="bad magic"):
            ckpt.SimulationCheckpoint.load(path)

    def test_truncated_payload(self, tmp_path):
        path = self.make_checkpoint(tmp_path)
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) // 2])
        with pytest.raises(ckpt.CheckpointError, match="failed to read"):
            ckpt.SimulationCheckpoint.load(path)

    def test_version_skew(self, tmp_path):
        path = tmp_path / "future.ckpt"
        payload = {"version": ckpt.CHECKPOINT_VERSION + 1, "engine": "analytic",
                   "packets_done": 0, "config": {}, "state": {}}
        with open(path, "wb") as handle:
            handle.write(ckpt.CHECKPOINT_MAGIC)
            pickle.dump(payload, handle)
        with pytest.raises(ckpt.CheckpointError, match="format version"):
            ckpt.SimulationCheckpoint.load(path)

    def test_engine_mismatch(self, tmp_path):
        path = self.make_checkpoint(tmp_path, engine="analytic")
        with pytest.raises(ckpt.CheckpointError, match="analytic"):
            ckpt.resume_simulation(path, expect_engine="event")

    def test_config_mismatch_names_differing_fields(self, tmp_path):
        path = self.make_checkpoint(tmp_path)
        with pytest.raises(ckpt.CheckpointError, match="differs in"):
            ckpt.resume_simulation(
                path, expect_engine="analytic", expect_config=base_config()
            )

    def test_policy_requires_path(self):
        with pytest.raises(ckpt.CheckpointError, match="requires a checkpoint"):
            ckpt.CheckpointPolicy(every=10, path=None)
        with pytest.raises(ckpt.CheckpointError, match=">= 0"):
            ckpt.CheckpointPolicy(every=-1)


# ----------------------------------------------------------------------
# Observability integration
# ----------------------------------------------------------------------

class TestCheckpointEvents:
    def test_save_and_resume_events(self, tmp_path):
        path = tmp_path / "traced.ckpt"
        obs = Observability.recording()
        simulate(
            hypertrio_config(), small_trace(packets=300), warmup_packets=50,
            observability=obs,
            checkpoint_every=100, checkpoint_path=path,
        )
        saves = [e for e in obs.tracer.events if e.kind == ev.CHECKPOINT_SAVE]
        assert len(saves) == 3
        assert [e.args["packets_done"] for e in saves] == [100, 200, 300]

        snapshot = ckpt.SimulationCheckpoint.load(path)
        snapshot.resume()
        tracer = snapshot.state["sim"]._tracer
        kinds = [e.kind for e in tracer.events]
        assert ev.CHECKPOINT_RESUME in kinds


# ----------------------------------------------------------------------
# Golden pinning: checkpointing cannot move any pinned number
# ----------------------------------------------------------------------

class TestGoldenWithCheckpoints:
    @pytest.mark.parametrize("name", sorted(GOLDEN_POINTS))
    def test_checkpointed_run_matches_pinned_golden(self, name, tmp_path):
        """Re-run each golden point *with snapshots enabled* and compare
        against the pinned pre-checkpoint expectations, field by field."""
        spec = GOLDEN_POINTS[name]
        pinned = json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))
        fresh = compute_golden_point(
            spec,
            checkpoint_every=max(1, spec["packets"] // 3),
            checkpoint_path=tmp_path / f"{name}.ckpt",
        )
        fresh = json.loads(json.dumps(fresh))
        assert fresh == pinned["points"][name], name
