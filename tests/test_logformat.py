"""Tests for the HyperSIO-style on-disk log format."""

import pytest

from repro.trace.collector import LogCollector, collect_single_tenant
from repro.trace.logformat import (
    MAGIC,
    LogFormatError,
    logs_equal,
    read_log,
    read_run,
    write_log,
    write_run,
)
from repro.trace.tenant import IPERF3, MEDIASTREAM, make_tenant_specs


@pytest.fixture
def sample_log():
    return collect_single_tenant(IPERF3, packets=25)


class TestLogRoundTrip:
    def test_round_trip_preserves_log(self, tmp_path, sample_log):
        path = tmp_path / "t.log"
        write_log(path, sample_log)
        assert logs_equal(read_log(path), sample_log)

    def test_event_count_returned(self, tmp_path, sample_log):
        path = tmp_path / "t.log"
        count = write_log(path, sample_log)
        assert count == len(sample_log.init_giovas) + len(sample_log.packets)

    def test_header_contains_metadata(self, tmp_path, sample_log):
        path = tmp_path / "t.log"
        write_log(path, sample_log)
        first_line = path.read_text().splitlines()[0]
        assert first_line.startswith(MAGIC)
        assert "benchmark=iperf3" in first_line
        assert f"sid={sample_log.sid}" in first_line

    def test_comments_and_blank_lines_ignored(self, tmp_path):
        path = tmp_path / "t.log"
        path.write_text(
            f"{MAGIC} benchmark=iperf3 sid=5\n"
            "\n"
            "# a comment\n"
            "I 0xf0000000   # inline comment\n"
            "P 0x34800000 0xbbe00000 0x35000000\n"
        )
        log = read_log(path)
        assert log.sid == 5
        assert log.init_giovas == [0xF000_0000]
        assert len(log.packets) == 1


class TestLogErrors:
    def test_missing_header(self, tmp_path):
        path = tmp_path / "bad.log"
        path.write_text("P 0x1 0x2 0x3\n")
        with pytest.raises(LogFormatError):
            read_log(path)

    def test_header_without_sid(self, tmp_path):
        path = tmp_path / "bad.log"
        path.write_text(f"{MAGIC} benchmark=iperf3\n")
        with pytest.raises(LogFormatError):
            read_log(path)

    def test_wrong_arity(self, tmp_path):
        path = tmp_path / "bad.log"
        path.write_text(f"{MAGIC} benchmark=x sid=0\nP 0x1 0x2\n")
        with pytest.raises(LogFormatError):
            read_log(path)

    def test_bad_address(self, tmp_path):
        path = tmp_path / "bad.log"
        path.write_text(f"{MAGIC} benchmark=x sid=0\nI zzz\n")
        with pytest.raises(LogFormatError):
            read_log(path)

    def test_unknown_record_kind(self, tmp_path):
        path = tmp_path / "bad.log"
        path.write_text(f"{MAGIC} benchmark=x sid=0\nQ 0x1\n")
        with pytest.raises(LogFormatError):
            read_log(path)


class TestRunDirectories:
    def test_run_round_trip(self, tmp_path):
        specs = make_tenant_specs(MEDIASTREAM, 5, 20)
        run = LogCollector().collect(specs)[0]
        paths = write_run(tmp_path / "run0", run)
        assert len(paths) == 5
        restored = read_run(tmp_path / "run0")
        assert len(restored.logs) == 5
        for original, parsed in zip(run.logs, restored.logs):
            assert logs_equal(original, parsed)

    def test_empty_directory_rejected(self, tmp_path):
        (tmp_path / "empty").mkdir()
        with pytest.raises(LogFormatError):
            read_run(tmp_path / "empty")

    def test_logs_sorted_by_sid(self, tmp_path):
        specs = make_tenant_specs(IPERF3, 12, 5)
        run = LogCollector().collect(specs)[0]
        write_run(tmp_path / "run", run)
        restored = read_run(tmp_path / "run")
        sids = [log.sid for log in restored.logs]
        assert sids == sorted(sids)
