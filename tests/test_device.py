"""Unit tests for device-side models: packets, rings, DevTLB builder."""

import pytest

from repro.cache.partitioned import PartitionedCache
from repro.cache.setassoc import FullyAssociativeCache, SetAssociativeCache
from repro.device.devtlb import build_devtlb
from repro.device.packet import (
    REQUESTS_PER_PACKET,
    Packet,
    PacketStats,
    RequestKind,
    TranslationRequest,
)
from repro.device.ring import DescriptorRing, RingLayout, make_default_layout


class TestPacket:
    def test_three_requests_per_packet(self):
        packet = Packet(sid=3, giovas=(0x3480_0000, 0xBBE0_0000, 0x3500_0000))
        requests = packet.requests()
        assert len(requests) == 3
        assert [r.kind for r in requests] == list(REQUESTS_PER_PACKET)

    def test_request_kinds_order(self):
        assert REQUESTS_PER_PACKET == (
            RequestKind.RING_POINTER,
            RequestKind.DATA_BUFFER,
            RequestKind.MAILBOX,
        )

    def test_request_key_is_sid_and_4k_page(self):
        request = TranslationRequest(sid=7, giova=0xBBE0_0123, kind=RequestKind.DATA_BUFFER)
        assert request.key == (7, 0xBBE00)

    def test_default_packet_size_matches_table2(self):
        packet = Packet(sid=0, giovas=(0, 0, 0))
        assert packet.size_bytes == 1542


class TestPacketStats:
    def test_drop_rate(self):
        stats = PacketStats()
        stats.arrived = 10
        stats.dropped = 3
        assert stats.drop_rate == pytest.approx(0.3)

    def test_drop_rate_empty(self):
        assert PacketStats().drop_rate == 0.0

    def test_record_processed_accumulates(self):
        stats = PacketStats()
        packet = Packet(sid=2, giovas=(0, 0, 0), size_bytes=1000)
        stats.record_processed(packet)
        stats.record_processed(packet)
        assert stats.bytes_processed == 2000
        assert stats.per_tenant_processed[2] == 2


class TestRingLayout:
    def test_default_layout_matches_paper_addresses(self):
        layout = make_default_layout(num_data_pages=30)
        assert layout.ring_page_giova == 0x3480_0000
        assert layout.data_page_giovas[0] == 0xBBE0_0000
        assert len(layout.data_page_giovas) == 30

    def test_data_pages_are_2m_spaced(self):
        layout = make_default_layout(num_data_pages=4)
        deltas = {
            b - a
            for a, b in zip(layout.data_page_giovas, layout.data_page_giovas[1:])
        }
        assert deltas == {2 * 1024 * 1024}

    def test_layout_identical_across_calls(self):
        """All tenants share the same gIOVA layout (same OS + driver)."""
        assert make_default_layout(8) == make_default_layout(8)

    def test_empty_layout_rejected(self):
        with pytest.raises(ValueError):
            make_default_layout(0)
        with pytest.raises(ValueError):
            RingLayout(ring_page_giova=0, mailbox_page_giova=0, data_page_giovas=())


class TestDescriptorRing:
    def test_giova_triple_structure(self):
        ring = DescriptorRing(make_default_layout(4), uses_per_page=3)
        ring_giova, data_giova, mailbox_giova = ring.next_packet_giovas()
        assert ring_giova >> 12 == 0x34800
        assert data_giova >> 21 == 0xBBE0_0000 >> 21
        assert mailbox_giova >> 12 == 0x3500_0000 >> 12

    def test_page_advances_after_uses_per_page(self):
        ring = DescriptorRing(make_default_layout(4), uses_per_page=2)
        pages = [ring.next_packet_giovas()[1] >> 21 for _ in range(8)]
        # Two packets per page, then the next page: AABBCCDD.
        assert pages[0] == pages[1]
        assert pages[1] != pages[2]
        assert pages[2] == pages[3]

    def test_ring_wraps_around(self):
        ring = DescriptorRing(make_default_layout(2), uses_per_page=1)
        pages = [ring.next_packet_giovas()[1] >> 21 for _ in range(4)]
        assert pages[0] == pages[2]
        assert pages[1] == pages[3]

    def test_data_offsets_stay_in_first_4k(self):
        """Descriptors alternate within the first 4 KB so every data page
        maps onto a single translation-cache key."""
        ring = DescriptorRing(make_default_layout(1), uses_per_page=100)
        for _ in range(50):
            _, data_giova, _ = ring.next_packet_giovas()
            assert (data_giova >> 12) == (0xBBE0_0000 >> 12)

    def test_jump_to_page(self):
        ring = DescriptorRing(make_default_layout(8), uses_per_page=10)
        ring.jump_to_page(5)
        assert ring.current_data_page == make_default_layout(8).data_page_giovas[5]

    def test_jump_out_of_range(self):
        ring = DescriptorRing(make_default_layout(2), uses_per_page=1)
        with pytest.raises(ValueError):
            ring.jump_to_page(2)

    def test_invalid_uses_per_page(self):
        with pytest.raises(ValueError):
            DescriptorRing(make_default_layout(2), uses_per_page=0)


class TestBuildDevtlb:
    def test_base_geometry(self):
        devtlb = build_devtlb(num_entries=64, ways=8, policy="lfu")
        assert isinstance(devtlb, SetAssociativeCache)
        assert devtlb.num_sets == 8
        assert devtlb.policy_name == "lfu"

    def test_partitioned_variant(self):
        devtlb = build_devtlb(num_entries=64, ways=8, num_partitions=8)
        assert isinstance(devtlb, PartitionedCache)
        assert devtlb.num_partitions == 8

    def test_fully_associative_variant(self):
        devtlb = build_devtlb(
            num_entries=64, ways=8, fully_associative=True, policy="lru"
        )
        assert isinstance(devtlb, FullyAssociativeCache)
        assert devtlb.num_sets == 1

    def test_oracle_needs_next_use(self):
        with pytest.raises(ValueError):
            build_devtlb(num_entries=64, ways=8, policy="oracle")
