"""Picklable stub job functions for the scheduler tests.

These live in an importable module (not the test file's local scope is
fine too under fork, but keeping them here makes them picklable by
reference under every multiprocessing start method).
"""

import os
import time


def ok_job(spec):
    """Deterministic success payload derived from the spec."""
    return {
        "result": {"seed": spec.seed, "benchmark": spec.benchmark},
        "duration_s": 0.001,
        "pid": os.getpid(),
    }


def failing_job(spec):
    """Always raises, carrying the seed so the error is attributable."""
    raise ValueError(f"kaboom-{spec.seed}")


def hang_job(spec):
    """Hangs forever for the 'hang' benchmark, succeeds otherwise."""
    if spec.benchmark == "hang":
        time.sleep(120)
    return ok_job(spec)


def fail_once_job(spec):
    """Fails the first attempt, succeeds after (marker file = shared state).

    The marker path is smuggled through the spec's free-form config dict.
    """
    marker = spec.config["marker"]
    if not os.path.exists(marker):
        with open(marker, "w", encoding="utf-8"):
            pass
        raise RuntimeError("first attempt fails")
    return ok_job(spec)
