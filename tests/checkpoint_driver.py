"""Subprocess driver for the SIGKILL/resume chaos tests.

Runs one simulation with periodic checkpoints and writes the serialised
result as canonical JSON.  The chaos test launches it, SIGKILLs it after
the first snapshot lands, relaunches with ``--resume``, and asserts the
eventual result file is byte-identical to an uninterrupted in-process
run.  Lives in its own module (not the test file) so it works as
``python -m tests.checkpoint_driver`` under any multiprocessing/start
conditions.
"""

import argparse
import json
import sys
from pathlib import Path


def build_fault_plan():
    """A non-trivial plan: random faults, a storm, and a DRAM spike."""
    from repro.faults import (
        FaultPlan,
        InvalidationStormSpec,
        LatencySpikeSpec,
        TranslationFaultSpec,
    )

    return FaultPlan(
        seed=11,
        translation_faults=(TranslationFaultSpec(probability=0.005),),
        invalidation_storms=(InvalidationStormSpec(sid=0, at_ns=40_000.0),),
        latency_spikes=(
            LatencySpikeSpec(
                target="dram", start_ns=0.0, end_ns=150_000.0, extra_ns=25.0
            ),
        ),
    )


def run_clean(engine: str, packets: int):
    """The uninterrupted reference run (also used in-process by the test)."""
    from repro.core.config import hypertrio_config
    from repro.sim.des import simulate_evented
    from repro.sim.simulator import simulate
    from repro.trace.constructor import construct_trace
    from repro.trace.tenant import profile_by_name

    run = {"analytic": simulate, "event": simulate_evented}[engine]
    trace = construct_trace(
        profile_by_name("mediastream"),
        num_tenants=4,
        packets_per_tenant=max(2_000, packets),
        interleaving="RR1",
        seed=3,
        max_packets=packets,
    )
    return run(
        hypertrio_config(), trace, warmup_packets=packets // 4,
        fault_plan=build_fault_plan(),
    )


def main(argv=None) -> int:
    from repro.core.config import hypertrio_config
    from repro.runner.serialize import result_to_dict
    from repro.sim.des import simulate_evented
    from repro.sim.simulator import simulate
    from repro.trace.constructor import construct_trace
    from repro.trace.tenant import profile_by_name

    parser = argparse.ArgumentParser()
    parser.add_argument("--engine", choices=("analytic", "event"), required=True)
    parser.add_argument("--packets", type=int, required=True)
    parser.add_argument("--checkpoint-every", type=int, required=True)
    parser.add_argument("--checkpoint-path", required=True)
    parser.add_argument("--out", required=True)
    parser.add_argument("--resume", action="store_true")
    args = parser.parse_args(argv)

    run = {"analytic": simulate, "event": simulate_evented}[args.engine]
    if args.resume:
        result = run(
            hypertrio_config(), None, resume_from=args.checkpoint_path
        )
    else:
        trace = construct_trace(
            profile_by_name("mediastream"),
            num_tenants=4,
            packets_per_tenant=max(2_000, args.packets),
            interleaving="RR1",
            seed=3,
            max_packets=args.packets,
        )
        result = run(
            hypertrio_config(), trace, warmup_packets=args.packets // 4,
            fault_plan=build_fault_plan(),
            checkpoint_every=args.checkpoint_every,
            checkpoint_path=args.checkpoint_path,
        )
    Path(args.out).write_text(
        json.dumps(result_to_dict(result), sort_keys=True), encoding="utf-8"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
