"""Tests for run telemetry."""

import pytest

from repro.cache.base import CacheStats
from repro.core.config import base_config, hypertrio_config
from repro.sim.simulator import HyperSimulator
from repro.sim.telemetry import Telemetry, WindowSample
from repro.trace.constructor import construct_trace
from repro.trace.tenant import MEDIASTREAM


class TestTelemetryUnit:
    def test_window_closes_at_capacity(self):
        telemetry = Telemetry(window_packets=2)
        stats = CacheStats()
        for step in range(4):
            stats.hits += 3
            telemetry.on_packet(
                now_ns=(step + 1) * 100.0,
                size_bytes=1000,
                devtlb_stats=stats,
                supplied=step,
                requests=(step + 1) * 3,
                drops=0,
                ptb_occupancy=step,
            )
        assert len(telemetry.windows) == 2
        first = telemetry.windows[0]
        assert first.packets == 2
        assert first.bytes == 2000

    def test_windows_difference_cumulative_counters(self):
        telemetry = Telemetry(window_packets=1)
        stats = CacheStats()
        stats.hits, stats.misses = 5, 5
        telemetry.on_packet(100.0, 1000, stats, 2, 10, 1, 0)
        stats.hits, stats.misses = 9, 6
        telemetry.on_packet(200.0, 1000, stats, 5, 20, 4, 0)
        second = telemetry.windows[1]
        assert second.devtlb_hits == 4
        assert second.prefetch_supplied == 3
        assert second.drops == 3

    def test_bandwidth_computation(self):
        window = WindowSample(
            index=0, start_ns=0.0, end_ns=100.0, packets=2, bytes=1250,
            drops=0, devtlb_hits=0, devtlb_accesses=0, prefetch_supplied=0,
            requests=0, mean_ptb_occupancy=0.0,
        )
        assert window.bandwidth_gbps == pytest.approx(100.0)  # 10000 bits/100ns

    def test_rates_guard_zero(self):
        window = WindowSample(
            index=0, start_ns=0.0, end_ns=0.0, packets=0, bytes=0, drops=0,
            devtlb_hits=0, devtlb_accesses=0, prefetch_supplied=0,
            requests=0, mean_ptb_occupancy=0.0,
        )
        assert window.bandwidth_gbps == 0.0
        assert window.devtlb_hit_rate == 0.0
        assert window.supplied_fraction == 0.0

    def test_invalid_window_size(self):
        with pytest.raises(ValueError):
            Telemetry(window_packets=0)

    def test_describe(self):
        telemetry = Telemetry(window_packets=1)
        telemetry.on_packet(61.68, 1542, CacheStats(), 0, 3, 0, 1)
        assert "Gb/s" in telemetry.windows[0].describe()


class TestTelemetryIntegration:
    def _run(self, config, tenants=32, packets=2000):
        trace = construct_trace(
            MEDIASTREAM, num_tenants=tenants, packets_per_tenant=200_000,
            max_packets=packets,
        )
        telemetry = Telemetry(window_packets=200)
        HyperSimulator(config, trace, telemetry=telemetry).run()
        return telemetry

    def test_windows_cover_most_of_the_run(self):
        telemetry = self._run(base_config())
        assert len(telemetry.windows) == 10
        assert sum(w.packets for w in telemetry.windows) == 2000

    def test_series_extraction(self):
        telemetry = self._run(base_config())
        series = telemetry.series("bandwidth_gbps")
        assert len(series) == len(telemetry.windows)
        assert all(value >= 0 for value in series)

    def test_hypertrio_warmup_visible(self):
        """The prefetcher's lock-in shows up as rising supplied fraction
        from the first window to steady state."""
        telemetry = self._run(hypertrio_config(), tenants=64, packets=4000)
        supplied = telemetry.series("supplied_fraction")
        assert supplied[-1] > supplied[0]
        steady = telemetry.steady_state_window()
        assert steady is not None
        assert steady.supplied_fraction > 0.3

    def test_steady_state_window_empty(self):
        assert Telemetry().steady_state_window() is None

    def test_windows_are_time_ordered(self):
        telemetry = self._run(base_config())
        ends = [w.end_ns for w in telemetry.windows]
        assert ends == sorted(ends)
        for window in telemetry.windows:
            assert window.end_ns >= window.start_ns
