"""Tests for run telemetry."""

import pytest

from repro.cache.base import CacheStats
from repro.core.config import base_config, hypertrio_config
from repro.sim.simulator import HyperSimulator
from repro.sim.telemetry import Telemetry, WindowSample
from repro.trace.constructor import construct_trace
from repro.trace.tenant import MEDIASTREAM


class TestTelemetryUnit:
    def test_window_closes_at_capacity(self):
        telemetry = Telemetry(window_packets=2)
        stats = CacheStats()
        for step in range(4):
            stats.hits += 3
            telemetry.on_packet(
                now_ns=(step + 1) * 100.0,
                size_bytes=1000,
                devtlb_stats=stats,
                supplied=step,
                requests=(step + 1) * 3,
                drops=0,
                ptb_occupancy=step,
            )
        assert len(telemetry.windows) == 2
        first = telemetry.windows[0]
        assert first.packets == 2
        assert first.bytes == 2000

    def test_windows_difference_cumulative_counters(self):
        telemetry = Telemetry(window_packets=1)
        stats = CacheStats()
        stats.hits, stats.misses = 5, 5
        telemetry.on_packet(100.0, 1000, stats, 2, 10, 1, 0)
        stats.hits, stats.misses = 9, 6
        telemetry.on_packet(200.0, 1000, stats, 5, 20, 4, 0)
        second = telemetry.windows[1]
        assert second.devtlb_hits == 4
        assert second.prefetch_supplied == 3
        assert second.drops == 3

    def test_bandwidth_computation(self):
        window = WindowSample(
            index=0, start_ns=0.0, end_ns=100.0, packets=2, bytes=1250,
            drops=0, devtlb_hits=0, devtlb_accesses=0, prefetch_supplied=0,
            requests=0, mean_ptb_occupancy=0.0,
        )
        assert window.bandwidth_gbps == pytest.approx(100.0)  # 10000 bits/100ns

    def test_rates_guard_zero(self):
        window = WindowSample(
            index=0, start_ns=0.0, end_ns=0.0, packets=0, bytes=0, drops=0,
            devtlb_hits=0, devtlb_accesses=0, prefetch_supplied=0,
            requests=0, mean_ptb_occupancy=0.0,
        )
        assert window.bandwidth_gbps == 0.0
        assert window.devtlb_hit_rate == 0.0
        assert window.supplied_fraction == 0.0

    def test_invalid_window_size(self):
        with pytest.raises(ValueError):
            Telemetry(window_packets=0)

    def test_describe(self):
        telemetry = Telemetry(window_packets=1)
        telemetry.on_packet(61.68, 1542, CacheStats(), 0, 3, 0, 1)
        assert "Gb/s" in telemetry.windows[0].describe()


class TestTelemetryIntegration:
    def _run(self, config, tenants=32, packets=2000):
        trace = construct_trace(
            MEDIASTREAM, num_tenants=tenants, packets_per_tenant=200_000,
            max_packets=packets,
        )
        telemetry = Telemetry(window_packets=200)
        HyperSimulator(config, trace, telemetry=telemetry).run()
        return telemetry

    def test_windows_cover_most_of_the_run(self):
        telemetry = self._run(base_config())
        assert len(telemetry.windows) == 10
        assert sum(w.packets for w in telemetry.windows) == 2000

    def test_series_extraction(self):
        telemetry = self._run(base_config())
        series = telemetry.series("bandwidth_gbps")
        assert len(series) == len(telemetry.windows)
        assert all(value >= 0 for value in series)

    def test_hypertrio_warmup_visible(self):
        """The prefetcher's lock-in shows up as rising supplied fraction
        from the first window to steady state."""
        telemetry = self._run(hypertrio_config(), tenants=64, packets=4000)
        supplied = telemetry.series("supplied_fraction")
        assert supplied[-1] > supplied[0]
        steady = telemetry.steady_state_window()
        assert steady is not None
        assert steady.supplied_fraction > 0.3

    def test_steady_state_window_empty(self):
        assert Telemetry().steady_state_window() is None

    def test_windows_are_time_ordered(self):
        telemetry = self._run(base_config())
        ends = [w.end_ns for w in telemetry.windows]
        assert ends == sorted(ends)
        for window in telemetry.windows:
            assert window.end_ns >= window.start_ns


class TestTelemetryEdgeCases:
    def _packet(self, telemetry, now_ns, stats):
        telemetry.on_packet(now_ns, 1000, stats, 0, 0, 0, 0)

    def test_trailing_partial_window_flushed_by_finish(self):
        telemetry = Telemetry(window_packets=4)
        stats = CacheStats()
        for step in range(6):  # one full window + 2 trailing packets
            self._packet(telemetry, (step + 1) * 100.0, stats)
        assert len(telemetry.windows) == 1
        telemetry.finish(now_ns=700.0)
        assert len(telemetry.windows) == 2
        tail = telemetry.windows[-1]
        assert tail.packets == 2
        assert tail.end_ns == 700.0

    def test_finish_noop_on_window_boundary(self):
        telemetry = Telemetry(window_packets=2)
        stats = CacheStats()
        for step in range(4):  # exactly two full windows
            self._packet(telemetry, (step + 1) * 100.0, stats)
        telemetry.finish()
        assert len(telemetry.windows) == 2

    def test_finish_on_empty_run(self):
        telemetry = Telemetry()
        telemetry.finish()
        assert telemetry.windows == []
        assert telemetry.steady_state_window() is None

    def test_finish_idempotent(self):
        telemetry = Telemetry(window_packets=4)
        self._packet(telemetry, 100.0, CacheStats())
        telemetry.finish(now_ns=150.0)
        telemetry.finish(now_ns=150.0)
        assert len(telemetry.windows) == 1

    def test_window_packets_one(self):
        telemetry = Telemetry(window_packets=1)
        stats = CacheStats()
        for step in range(3):
            self._packet(telemetry, (step + 1) * 100.0, stats)
        telemetry.finish()
        assert len(telemetry.windows) == 3
        assert all(window.packets == 1 for window in telemetry.windows)

    def test_steady_state_skips_trailing_partial(self):
        telemetry = Telemetry(window_packets=4)
        stats = CacheStats()
        for step in range(5):
            self._packet(telemetry, (step + 1) * 100.0, stats)
        telemetry.finish(now_ns=600.0)
        steady = telemetry.steady_state_window()
        assert steady is telemetry.windows[0]
        assert steady.packets == 4

    def test_steady_state_falls_back_to_only_partial(self):
        telemetry = Telemetry(window_packets=100)
        self._packet(telemetry, 100.0, CacheStats())
        telemetry.finish()
        steady = telemetry.steady_state_window()
        assert steady is telemetry.windows[0]
        assert steady.packets == 1

    def test_simulator_flushes_tail_window(self):
        """An end-to-end run whose length does not divide into windows
        still accounts for every accepted packet."""
        trace = construct_trace(
            MEDIASTREAM, num_tenants=8, packets_per_tenant=200_000,
            max_packets=1100,
        )
        telemetry = Telemetry(window_packets=500)
        HyperSimulator(base_config(), trace, telemetry=telemetry).run()
        assert sum(w.packets for w in telemetry.windows) == 1100
        assert telemetry.windows[-1].packets == 100
