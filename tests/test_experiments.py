"""Tests for the experiment drivers (smoke scale)."""

import pytest

from repro.analysis.experiments import (
    ALL_EXPERIMENTS,
    figure4,
    figure5,
    figure8,
    figure9,
    figure11b,
    figure12b,
    partitioned_only_config,
    table1,
    table2,
    table3,
    table4,
)
from repro.analysis.report import ExperimentTable
from repro.analysis.scale import SMOKE
from repro.analysis.sweeps import clear_trace_cache


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_trace_cache()
    yield
    clear_trace_cache()


class TestStaticTables:
    def test_table1_lists_three_hosts(self):
        table = table1()
        assert len(table.rows) == 3
        assert "AMD Ryzen 9 3900X" in table.rows[0][1]

    def test_table2_reports_paper_parameters(self):
        table = table2()
        parameters = table.column("parameter")
        assert "One-way PCIe latency" in parameters
        assert "I/O link bandwidth" in parameters
        paper = dict(zip(parameters, table.column("paper")))
        assert paper["DRAM latency"] == "50 ns"

    def test_table4_contrasts_configs(self):
        table = table4()
        rows = {row[0]: (row[1], row[2]) for row in table.rows}
        assert rows["PTB entries"] == (1, 32)
        assert "8 partition(s)" in rows["DevTLB"][1]
        assert rows["Prefetching"][0] == "no"


class TestTable3:
    def test_ratios_match_paper(self):
        table = table3(num_tenants=16, packets_per_tenant=400)
        for row in table.rows:
            benchmark, *_, measured_ratio, paper_ratio = row
            assert measured_ratio == pytest.approx(paper_ratio, rel=0.25), benchmark

    def test_totals_scale_with_tenants(self):
        small = table3(num_tenants=8, packets_per_tenant=300)
        large = table3(num_tenants=16, packets_per_tenant=300)
        assert sum(large.column("total")) > sum(small.column("total"))


class TestFigureDrivers:
    def test_figure4_smoke(self):
        table = figure4(SMOKE)
        assert table.columns[0] == "connections"
        assert len(table.rows) == 2

    def test_figure5_native_dominates_at_scale(self):
        table = figure5(SMOKE)
        last = table.rows[-1]
        native, vf = last[1], last[2]
        assert native >= vf

    def test_figure8_reproduces_groups(self):
        table = figure8(packets=30_000)
        groups = dict(zip(table.column("group"), table.column("pages")))
        assert groups == {"ring": 2, "data": 30, "init": 70}

    def test_figure9_small_beats_large_is_false(self):
        """A bigger DevTLB can only help at low tenant counts."""
        table = figure9(SMOKE)
        for row in table.rows:
            _, small_bw, large_bw = row
            assert large_bw >= small_bw - 10.0

    def test_figure11b_runs_all_policies(self):
        table = figure11b(SMOKE)
        assert table.columns[2:] == ["LRU util %", "LFU util %", "oracle util %"]
        assert len(table.rows) == len(SMOKE.tenant_counts)

    def test_figure12b_ptb_monotone(self):
        table = figure12b(SMOKE)
        for row in table.rows:
            _, _, ptb1, ptb8, ptb32 = row
            assert ptb8 >= ptb1 - 5.0
            assert ptb32 >= ptb8 - 5.0


class TestConfigHelpers:
    def test_partitioned_only_config_disables_extras(self):
        config = partitioned_only_config()
        assert config.ptb_entries == 1
        assert not config.prefetch.enabled
        assert config.devtlb.num_partitions == 8

    def test_registry_complete(self):
        expected = {
            "device_scaling", "resilience", "service_saturation",
            "table1", "table2", "table3", "table4",
            "figure4", "figure5", "figure8", "figure9", "figure10",
            "figure11a", "figure11b", "figure11c",
            "figure12a", "figure12b", "figure12c",
        }
        assert set(ALL_EXPERIMENTS) == expected
        for driver in ALL_EXPERIMENTS.values():
            assert callable(driver)
