"""Tests for the observability layer (tracer, metrics, export, wiring)."""

import json
import random

import pytest

from repro.cache.setassoc import SetAssociativeCache
from repro.core.config import base_config, hypertrio_config
from repro.obs import (
    EvictionAttribution,
    LatencyHistogram,
    MetricsRegistry,
    NullTracer,
    Observability,
    RecordingTracer,
    bucket_bounds,
    latency_bucket,
    percentile_from_buckets,
    to_chrome_trace,
    write_metrics,
    write_trace,
)
from repro.obs import events as ev
from repro.sim.simulator import HyperSimulator
from repro.trace.constructor import construct_trace
from repro.trace.tenant import MEDIASTREAM


def _run(config, observability=None, tenants=16, packets=1500):
    trace = construct_trace(
        MEDIASTREAM, num_tenants=tenants, packets_per_tenant=200_000,
        max_packets=packets,
    )
    simulator = HyperSimulator(config, trace, observability=observability)
    return simulator.run()


# ----------------------------------------------------------------------
# Histogram bucket math
# ----------------------------------------------------------------------
class TestLatencyBuckets:
    def test_bucket_contains_value(self):
        for value in (0.7, 1.0, 3.5, 61.68, 1000.0, 123456.789):
            low, high = bucket_bounds(latency_bucket(value))
            assert low <= value < high

    def test_buckets_are_ordered(self):
        values = [0.5, 1.0, 2.0, 100.0, 101.0, 1e6]
        ids = [latency_bucket(v) for v in values]
        assert ids == sorted(ids)

    def test_nonpositive_goes_to_zero(self):
        assert latency_bucket(0.0) == 0
        assert latency_bucket(-5.0) == 0
        assert bucket_bounds(0) == (0.0, 0.0)

    def test_percentile_against_brute_force(self):
        """Histogram percentiles land within half a bucket width of the
        exact order statistic over a skewed random sample."""
        rng = random.Random(7)
        samples = [rng.expovariate(1.0 / 500.0) + 60.0 for _ in range(5000)]
        histogram = LatencyHistogram()
        for value in samples:
            histogram.record(value)
        ordered = sorted(samples)
        for p in (50.0, 95.0, 99.0):
            import math

            exact = ordered[max(0, math.ceil(p / 100.0 * len(ordered)) - 1)]
            estimate = histogram.percentile(p)
            assert estimate == pytest.approx(exact, rel=0.07)

    def test_percentile_bounds_checked(self):
        with pytest.raises(ValueError):
            percentile_from_buckets({1: 1}, 1, 101.0)

    def test_empty_histogram(self):
        histogram = LatencyHistogram()
        assert histogram.percentile(99.0) == 0.0
        assert histogram.mean_ns == 0.0
        assert histogram.summary()["count"] == 0

    def test_merge(self):
        a, b = LatencyHistogram(), LatencyHistogram()
        for value in (10.0, 20.0):
            a.record(value)
        for value in (5.0, 40.0):
            b.record(value)
        a.merge(b)
        assert a.count == 4
        assert a.min_ns == 5.0
        assert a.max_ns == 40.0
        assert a.total_ns == pytest.approx(75.0)


# ----------------------------------------------------------------------
# Tracer
# ----------------------------------------------------------------------
class TestTracer:
    def test_null_tracer_is_disabled(self):
        tracer = NullTracer()
        assert tracer.enabled is False
        assert tracer.sample_packet() is False
        tracer.emit("devtlb.hit", 1.0)  # no-op, no error

    def test_sampling_deterministic_under_fixed_seed(self):
        a = RecordingTracer(sample_rate=0.3, seed=42)
        b = RecordingTracer(sample_rate=0.3, seed=42)
        decisions_a = [a.sample_packet() for _ in range(500)]
        decisions_b = [b.sample_packet() for _ in range(500)]
        assert decisions_a == decisions_b
        assert 50 < sum(decisions_a) < 250  # roughly the configured rate

    def test_sample_rate_extremes(self):
        assert all(
            RecordingTracer(sample_rate=1.0).sample_packet() for _ in range(10)
        )
        never = RecordingTracer(sample_rate=0.0)
        assert not any(never.sample_packet() for _ in range(10))

    def test_max_events_cap(self):
        tracer = RecordingTracer(max_events=3)
        for step in range(5):
            tracer.emit("devtlb.hit", float(step))
        assert len(tracer.events) == 3
        assert tracer.dropped_events == 2

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            RecordingTracer(sample_rate=1.5)
        with pytest.raises(ValueError):
            RecordingTracer(max_events=0)


# ----------------------------------------------------------------------
# Metrics registry / eviction attribution
# ----------------------------------------------------------------------
class TestMetricsRegistry:
    def test_get_or_create_identity(self):
        registry = MetricsRegistry()
        first = registry.counter("hits", structure="devtlb", sid=3)
        second = registry.counter("hits", sid=3, structure="devtlb")
        assert first is second
        first.inc(2)
        assert second.value == 2

    def test_histograms_by_label(self):
        registry = MetricsRegistry()
        registry.histogram("lat", sid=1).record(10.0)
        registry.histogram("lat", sid=2).record(20.0)
        registry.histogram("other", sid=3).record(30.0)
        by_sid = registry.histograms_by_label("lat", "sid")
        assert set(by_sid) == {1, 2}
        assert by_sid[2].max_ns == 20.0

    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.counter("c", sid=0).inc()
        registry.gauge("g").set(2.5)
        registry.histogram("h", sid=0).record(5.0)
        snapshot = registry.snapshot()
        assert snapshot["counters"][0]["value"] == 1
        assert snapshot["gauges"][0]["value"] == 2.5
        assert snapshot["histograms"][0]["count"] == 1
        json.dumps(snapshot)  # JSON-compatible

    def test_eviction_attribution_counts_cross_tenant(self):
        attribution = EvictionAttribution()
        listener = attribution.listener_for("devtlb")
        listener((1, 100), (2, 200))  # sid 1 evicted sid 2
        listener((1, 101), (2, 201))
        listener((3, 300), (3, 301))  # self-eviction: not cross-tenant
        assert attribution.cross_tenant_count() == 2
        assert attribution.cross_tenant_count("devtlb") == 2
        assert attribution.victim_counts("devtlb") == {2: 2}
        dump = attribution.to_dict()
        assert dump["devtlb"]["total_cross_tenant"] == 2
        assert dump["devtlb"]["pairs"] == {"1->2": 2}

    def test_eviction_attribution_ignores_unkeyed(self):
        attribution = EvictionAttribution()
        attribution.record("cache", "plain-key", (1, 2))
        assert attribution.pairs == {}

    def test_listener_fires_on_real_cache(self):
        cache = SetAssociativeCache(num_entries=2, ways=2, policy="lru")
        attribution = EvictionAttribution()
        cache.eviction_listener = attribution.listener_for("tiny")
        cache.insert((1, 10), "a")
        cache.insert((1, 11), "b")
        cache.insert((2, 12), "c")  # set full: sid 2 evicts a sid-1 entry
        assert attribution.cross_tenant_count("tiny") == 1


# ----------------------------------------------------------------------
# Export formats
# ----------------------------------------------------------------------
class TestExport:
    def _trace_events(self):
        tracer = RecordingTracer()
        tracer.emit(ev.PACKET_ADMIT, 1000.0, sid=3, size_bytes=1542)
        tracer.emit(ev.DEVTLB_MISS, 1000.0, sid=3, page=77)
        tracer.emit(ev.WALKER_WALK, 1100.0, sid=3, dur_ns=500.0, memory_accesses=24)
        tracer.emit(ev.REQUEST_TRANSLATE, 1000.0, sid=3, dur_ns=700.0)
        return tracer.events

    def test_chrome_trace_schema(self):
        document = to_chrome_trace(self._trace_events())
        assert "traceEvents" in document
        records = document["traceEvents"]
        json.dumps(document)
        phases = {record["ph"] for record in records}
        assert phases <= {"M", "X", "i"}
        for record in records:
            assert {"name", "ph", "pid", "tid"} <= set(record)
            if record["ph"] == "X":
                assert record["dur"] > 0
            if record["ph"] == "i":
                assert record["s"] == "t"
        metadata = [r for r in records if r["ph"] == "M"]
        names = {r["name"] for r in metadata}
        assert names == {"process_name", "thread_name"}

    def test_chrome_trace_track_layout(self):
        """One pid per structure, tid = SID inside it."""
        records = to_chrome_trace(self._trace_events())["traceEvents"]
        by_name = {
            r["args"]["name"]: r["pid"]
            for r in records
            if r["ph"] == "M" and r["name"] == "process_name"
        }
        assert {"packet", "devtlb", "walker", "request"} <= set(by_name)
        assert len(set(by_name.values())) == len(by_name)
        spans = [r for r in records if r["ph"] == "X"]
        assert all(r["tid"] == 3 for r in spans)

    def test_timestamps_are_microseconds(self):
        records = to_chrome_trace(self._trace_events())["traceEvents"]
        walk = next(r for r in records if r["name"] == ev.WALKER_WALK)
        assert walk["ts"] == pytest.approx(1.1)
        assert walk["dur"] == pytest.approx(0.5)

    def test_write_trace_dispatch(self, tmp_path):
        events = self._trace_events()
        chrome = write_trace(events, tmp_path / "run.trace.json")
        loaded = json.loads(chrome.read_text())
        assert loaded["traceEvents"]
        jsonl = write_trace(events, tmp_path / "run.trace.jsonl")
        lines = [
            json.loads(line) for line in jsonl.read_text().splitlines() if line
        ]
        assert len(lines) == len(events)
        assert all(line["kind"] in ev.ALL_EVENT_KINDS for line in lines)


# ----------------------------------------------------------------------
# End-to-end through the simulator
# ----------------------------------------------------------------------
class TestSimulatorIntegration:
    def test_disabled_observability_changes_nothing(self):
        baseline = _run(base_config())
        with_null = _run(base_config(), Observability.disabled())
        assert with_null.achieved_bandwidth_gbps == baseline.achieved_bandwidth_gbps
        assert with_null.latency.count == baseline.latency.count

    def test_recording_run_emits_valid_events(self):
        observability = Observability.recording()
        result = _run(base_config(), observability)
        events = observability.tracer.events
        assert events
        kinds = {event.kind for event in events}
        assert kinds <= ev.ALL_EVENT_KINDS
        assert ev.PACKET_ADMIT in kinds
        assert ev.REQUEST_TRANSLATE in kinds
        # Every traced packet produced exactly 3 request spans' worth of
        # lifecycle: admits match sampled packets.
        admits = sum(1 for event in events if event.kind == ev.PACKET_ADMIT)
        assert admits == observability.tracer.packets_sampled
        translates = [e for e in events if e.kind == ev.REQUEST_TRANSLATE]
        assert len(translates) == 3 * admits
        assert result.latency.count == 3 * result.packets.accepted

    def test_event_ordering_within_request(self):
        """A request's lookup events never precede its packet's admit."""
        observability = Observability.recording()
        _run(base_config(), observability, tenants=4, packets=200)
        last_admit = {}
        for event in observability.tracer.events:
            if event.kind == ev.PACKET_ADMIT:
                last_admit[event.sid] = event.ts_ns
            elif event.kind in (ev.DEVTLB_HIT, ev.DEVTLB_MISS):
                assert event.ts_ns >= last_admit[event.sid]

    def test_results_unchanged_by_recording(self):
        baseline = _run(base_config())
        traced = _run(base_config(), Observability.recording())
        assert traced.achieved_bandwidth_gbps == baseline.achieved_bandwidth_gbps
        assert traced.packets.dropped == baseline.packets.dropped

    def test_per_sid_histograms_match_overall(self):
        observability = Observability.metrics_only()
        result = _run(base_config(), observability, tenants=8)
        per_sid = observability.metrics.histograms_by_label(
            "translation_latency_ns", "sid"
        )
        assert len(per_sid) == 8
        assert sum(h.count for h in per_sid.values()) == result.latency.count
        merged = LatencyHistogram()
        for histogram in per_sid.values():
            merged.merge(histogram)
        assert merged.max_ns == result.latency.max_ns
        assert merged.percentile(99.0) == result.latency.percentile(99.0)

    def test_per_sid_histogram_correctness_brute_force(self):
        """Per-SID percentiles agree with brute-force over per-SID samples
        reconstructed from a dedicated instrumented run."""
        observability = Observability.metrics_only()
        recorded = []

        class SpyHistogram(LatencyHistogram):
            def record(self, value_ns):
                recorded.append(value_ns)
                super().record(value_ns)

        registry = observability.metrics
        spy = SpyHistogram()
        registry._histograms[("translation_latency_ns", (("sid", 0),))] = spy
        _run(base_config(), observability, tenants=1, packets=400)
        assert spy.count == len(recorded) > 0
        import math

        ordered = sorted(recorded)
        exact = ordered[max(0, math.ceil(0.95 * len(ordered)) - 1)]
        assert spy.percentile(95.0) == pytest.approx(exact, rel=0.07)

    def test_cross_tenant_evictions_recorded_for_shared_devtlb(self):
        observability = Observability.metrics_only()
        _run(base_config(), observability, tenants=64, packets=3000)
        assert observability.evictions.cross_tenant_count("devtlb") > 0

    def test_partitioned_devtlb_isolates_tenants(self):
        """HyperTRIO's per-tenant DevTLB partitions cannot cross-evict when
        every tenant owns a partition (8 tenants, 8 partitions)."""
        config = hypertrio_config()
        observability = Observability.metrics_only()
        trace = construct_trace(
            MEDIASTREAM, num_tenants=8, packets_per_tenant=200_000,
            max_packets=2000,
        )
        HyperSimulator(config, trace, observability=observability).run()
        assert observability.evictions.cross_tenant_count("devtlb") == 0

    def test_sampled_run_traces_fewer_packets(self):
        full = Observability.recording(sample_rate=1.0, seed=1)
        sampled = Observability.recording(sample_rate=0.25, seed=1)
        _run(base_config(), full, packets=800)
        _run(base_config(), sampled, packets=800)
        assert 0 < sampled.tracer.packets_sampled < full.tracer.packets_sampled
        assert len(sampled.tracer.events) < len(full.tracer.events)

    def test_metrics_file_end_to_end(self, tmp_path):
        observability = Observability.recording()
        result = _run(base_config(), observability, tenants=8)
        path = write_metrics(tmp_path / "run.metrics.json", observability, result)
        document = json.loads(path.read_text())
        assert document["schema"].startswith("repro-obs-metrics/")
        per_sid = document["per_sid_latency"]
        assert len(per_sid) == 8
        for summary in per_sid.values():
            assert summary["p50_ns"] <= summary["p95_ns"] <= summary["p99_ns"]
            assert summary["p99_ns"] <= summary["max_ns"] * 1.07
        assert "cross_tenant_evictions" in document
        assert document["overall_latency"]["p99_ns"] > 0

    def test_percentiles_in_result(self):
        result = _run(base_config())
        assert set(result.percentiles) == {"p50_ns", "p95_ns", "p99_ns"}
        assert (
            result.percentiles["p50_ns"]
            <= result.percentiles["p95_ns"]
            <= result.percentiles["p99_ns"]
        )
        assert "lat p50/p95/p99" in result.summary()

    def test_prefetch_events_present_with_hypertrio(self):
        observability = Observability.recording()
        config = hypertrio_config()
        trace = construct_trace(
            MEDIASTREAM, num_tenants=8, packets_per_tenant=200_000,
            max_packets=2000,
        )
        HyperSimulator(config, trace, observability=observability).run()
        kinds = {event.kind for event in observability.tracer.events}
        assert ev.PREFETCH_PREDICT in kinds
        assert ev.PREFETCH_ISSUE in kinds
        assert ev.PREFETCH_INSTALL in kinds
        assert ev.PREFETCH_SUPPLY in kinds
