"""Tests for reuse-distance analysis."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.reuse import (
    _fast_reuse_distances,
    devtlb_reuse_profile,
    reuse_distances,
    reuse_profile,
)
from repro.trace.constructor import construct_trace
from repro.trace.tenant import IPERF3, MEDIASTREAM


class TestReuseDistances:
    def test_docstring_example(self):
        assert reuse_distances(["a", "b", "a", "a", "b"]) == [None, None, 1, 0, 1]

    def test_first_touches_are_none(self):
        assert reuse_distances(["x", "y", "z"]) == [None, None, None]

    def test_immediate_reuse_is_zero(self):
        assert reuse_distances(["x", "x"]) == [None, 0]

    def test_distance_counts_distinct_intervening_keys(self):
        # 'a' reused after b, b, c: two distinct keys in between.
        assert reuse_distances(["a", "b", "b", "c", "a"])[-1] == 2

    @given(st.lists(st.integers(min_value=0, max_value=20), max_size=120))
    @settings(max_examples=60, deadline=None)
    def test_fast_matches_reference(self, keys):
        assert _fast_reuse_distances(keys) == reuse_distances(keys)


class TestReuseProfile:
    def test_round_robin_distance_is_tenant_count(self):
        """Two tenants alternating one key each: reuse distance 1."""
        keys = [0, 1] * 20
        profile = reuse_profile(keys, capacities=(1, 2, 4))
        assert profile.distinct_keys == 2
        assert profile.predicted_lru_hit_rate(2) > 0.9
        assert profile.predicted_lru_hit_rate(1) == 0.0

    def test_predicted_hit_rate_monotone_in_capacity(self):
        keys = [i % 7 for i in range(200)]
        profile = reuse_profile(keys, capacities=(2, 4, 8))
        assert (
            profile.hit_rate_at[2]
            <= profile.hit_rate_at[4]
            <= profile.hit_rate_at[8]
        )

    def test_unknown_capacity_rejected(self):
        profile = reuse_profile([1, 2, 1], capacities=(4,))
        with pytest.raises(KeyError):
            profile.predicted_lru_hit_rate(64)

    def test_empty_stream_rejected(self):
        with pytest.raises(ValueError):
            reuse_profile([])

    def test_median_distance(self):
        profile = reuse_profile(["a", "a", "a"], capacities=(2,))
        assert profile.median_distance == 0.0
        assert profile.first_touches == 1


class TestDevtlbReuseProfile:
    def test_explains_the_paper_capacity_wall(self):
        """The quantitative core of Section V-C: the DevTLB key stream's
        reuse distances scale with the tenant count, so 64 entries are
        plenty at 2 tenants and hopeless at 64."""
        small = devtlb_reuse_profile(
            construct_trace(IPERF3, 2, 100_000, max_packets=600).packets,
            capacities=(64,),
        )
        large = devtlb_reuse_profile(
            construct_trace(IPERF3, 64, 100_000, max_packets=1200).packets,
            capacities=(64,),
        )
        assert small.predicted_lru_hit_rate(64) > 0.9
        assert large.predicted_lru_hit_rate(64) < 0.3

    def test_distinct_keys_scale_with_tenants(self):
        trace = construct_trace(MEDIASTREAM, 8, 100_000, max_packets=1000)
        profile = devtlb_reuse_profile(trace.packets)
        # ~3 hot keys per tenant at minimum.
        assert profile.distinct_keys >= 8 * 3

    def test_predicted_hit_rate_tracks_simulation(self):
        """The stack-distance prediction approximates the measured
        fully-associative LRU DevTLB hit rate."""
        from repro.core.config import base_config, TlbConfig
        from repro.sim.simulator import HyperSimulator

        trace = construct_trace(IPERF3, 8, 100_000, max_packets=900)
        predicted = devtlb_reuse_profile(
            trace.packets, capacities=(64,)
        ).predicted_lru_hit_rate(64)
        config = base_config().with_overrides(
            devtlb=TlbConfig(
                num_entries=64, ways=64, policy="lru", fully_associative=True
            )
        )
        measured = HyperSimulator(config, trace).run().hit_rate("devtlb")
        assert measured == pytest.approx(predicted, abs=0.05)
