"""Unit tests for the trace constructor and interleavings."""

import pytest

from repro.trace.constructor import (
    Interleaving,
    TraceConstructor,
    construct_trace,
    interleave,
)
from repro.trace.records import PacketRecord
from repro.trace.tenant import IPERF3, MEDIASTREAM, make_tenant_specs


def _stream(sid, count):
    return iter(PacketRecord(sid=sid, giovas=(1, 2, 3)) for _ in range(count))


class TestInterleavingParse:
    @pytest.mark.parametrize(
        "text,kind,burst",
        [("RR1", "RR", 1), ("RR4", "RR", 4), ("RAND1", "RAND", 1),
         ("rr2", "RR", 2), ("rand8", "RAND", 8)],
    )
    def test_parse_valid(self, text, kind, burst):
        scheme = Interleaving.parse(text)
        assert scheme.kind == kind
        assert scheme.burst == burst

    @pytest.mark.parametrize("text", ["RR", "RAND", "FIFO1", "RR0x", ""])
    def test_parse_invalid(self, text):
        with pytest.raises(ValueError):
            Interleaving.parse(text)

    def test_zero_burst_rejected(self):
        with pytest.raises(ValueError):
            Interleaving(kind="RR", burst=0)

    def test_str_round_trip(self):
        assert str(Interleaving.parse("RR4")) == "RR4"


class TestInterleave:
    def test_rr1_alternates_tenants(self):
        merged = list(
            interleave([_stream(0, 5), _stream(1, 5)], Interleaving("RR", 1))
        )
        assert [p.sid for p in merged[:6]] == [0, 1, 0, 1, 0, 1]

    def test_rr4_bursts(self):
        merged = list(
            interleave([_stream(0, 8), _stream(1, 8)], Interleaving("RR", 4))
        )
        assert [p.sid for p in merged[:8]] == [0, 0, 0, 0, 1, 1, 1, 1]

    def test_stops_at_first_exhausted_tenant(self):
        """The edge-effect rule: trace ends when any tenant drains."""
        merged = list(
            interleave([_stream(0, 3), _stream(1, 100)], Interleaving("RR", 1))
        )
        # Tenant 0 drains after its 3rd packet; the run stops there.
        assert sum(1 for p in merged if p.sid == 0) == 3
        assert sum(1 for p in merged if p.sid == 1) <= 4

    def test_rand_is_seeded_and_reproducible(self):
        streams = lambda: [_stream(0, 50), _stream(1, 50), _stream(2, 50)]
        a = [p.sid for p in interleave(streams(), Interleaving("RAND", 1), seed=9)]
        b = [p.sid for p in interleave(streams(), Interleaving("RAND", 1), seed=9)]
        assert a == b

    def test_rand_differs_across_seeds(self):
        streams = lambda: [_stream(0, 50), _stream(1, 50)]
        a = [p.sid for p in interleave(streams(), Interleaving("RAND", 1), seed=1)]
        b = [p.sid for p in interleave(streams(), Interleaving("RAND", 1), seed=2)]
        assert a != b

    def test_empty_streams(self):
        assert list(interleave([], Interleaving("RR", 1))) == []


class TestConstructTrace:
    def test_tenant_count(self):
        trace = construct_trace(IPERF3, num_tenants=4, packets_per_tenant=50)
        assert trace.num_tenants == 4

    def test_max_packets_caps_trace(self):
        trace = construct_trace(
            IPERF3, num_tenants=4, packets_per_tenant=10_000, max_packets=100
        )
        assert len(trace.packets) == 100

    def test_interleaving_recorded(self):
        trace = construct_trace(IPERF3, 2, 50, interleaving="RR4")
        assert str(trace.interleaving) == "RR4"

    def test_stats_populated(self):
        trace = construct_trace(IPERF3, 2, 50)
        assert trace.stats.total_packets == len(trace.packets)
        assert trace.stats.total_translations == 3 * len(trace.packets)

    def test_system_has_walkers_for_all_sids(self):
        trace = construct_trace(IPERF3, 3, 20)
        for sid in (0, 1, 2):
            assert trace.system.walker_for(sid) is not None

    def test_deterministic_across_constructions(self):
        a = construct_trace(MEDIASTREAM, 4, 100, seed=5)
        b = construct_trace(MEDIASTREAM, 4, 100, seed=5)
        assert a.packets == b.packets

    def test_constructor_api(self):
        specs = make_tenant_specs(IPERF3, 2, 30)
        trace = TraceConstructor(seed=1).construct(specs, "RAND1", max_packets=40)
        assert len(trace.packets) <= 40
        assert trace.num_tenants <= 2

    def test_giovas_are_translatable(self):
        """Every gIOVA emitted by the constructor must walk successfully."""
        trace = construct_trace(MEDIASTREAM, 2, 30)
        for packet in trace.packets[:30]:
            walker = trace.system.walker_for(packet.sid)
            for giova in packet.giovas:
                assert walker.walk(giova).hpa > 0
