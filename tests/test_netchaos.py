"""Wire-level chaos: network fault plans, the chaos proxy, and parity.

The headline guarantee under test: with a sessioned client, a replay
whose wire is attacked by *every* :class:`NetworkFaultPlan` fault class
still flushes a ``SimulationResult`` byte-identical to offline
``simulate`` — and a fault-free plan leaves the byte stream untouched.

Asyncio pieces run under ``asyncio.run`` inside synchronous tests (no
pytest-asyncio in the environment).
"""

import asyncio
import json
import pickle

import pytest

from repro.core.config import hypertrio_config
from repro.faults import FaultPlanFormatError
from repro.faults.netchaos import (
    ChaosProxy,
    CoalesceSpec,
    CorruptSpec,
    CutSpec,
    DropSpec,
    NetworkFaultPlan,
    ReconnectStormSpec,
    SplitSpec,
    StallSpec,
    netplan_from_dict,
    netplan_from_json,
    netplan_to_dict,
    netplan_to_json,
)
from repro.runner.serialize import result_from_dict, result_to_dict
from repro.service import protocol
from repro.service.client import CircuitBreaker, ServiceClient
from repro.service.engine import ServiceEngine
from repro.service.server import ConnectionPolicy, ServiceServer
from repro.sim.simulator import HyperSimulator
from repro.trace.constructor import construct_trace
from repro.trace.tenant import profile_by_name

TENANTS = 8
PACKETS = 120


def make_trace(num_tenants=TENANTS, packets=PACKETS):
    return construct_trace(
        profile_by_name("mediastream"),
        num_tenants=num_tenants,
        packets_per_tenant=200_000,
        max_packets=packets,
    )


def offline_result(config):
    return HyperSimulator(config, make_trace()).run(warmup_packets=0)


def full_plan(seed=7):
    """One plan exercising every spec type (for round-trip tests)."""
    return NetworkFaultPlan(
        seed=seed,
        drops=(DropSpec(after_frames=3), DropSpec(after_frames=9, connection=1)),
        cuts=(CutSpec(frame=2, direction="response", cut_bytes=5),),
        corruptions=(CorruptSpec(frame=4, offset=11, connection=2),),
        stalls=(StallSpec(frame=1, delay_s=0.5, direction="response"),),
        splits=(SplitSpec(chunk_bytes=3),),
        coalesces=(CoalesceSpec(frames=4, direction="response"),),
        reconnect_storms=(
            ReconnectStormSpec(connections=2, after_frames=1, jitter_frames=2),
        ),
    )


class TestNetworkFaultPlanFormat:
    def test_json_round_trip_is_exact(self):
        plan = full_plan()
        assert netplan_from_json(netplan_to_json(plan)) == plan

    def test_dict_form_omits_defaults_and_empty_spec_lists(self):
        document = netplan_to_dict(
            NetworkFaultPlan(seed=1, drops=(DropSpec(after_frames=2),))
        )
        assert document == {"seed": 1, "drops": [{"after_frames": 2}]}

    def test_round_trip_is_bit_stable(self):
        text = netplan_to_json(full_plan())
        assert netplan_to_json(netplan_from_json(text)) == text

    def test_null_plan(self):
        assert NetworkFaultPlan().is_null
        assert not NetworkFaultPlan(drops=(DropSpec(after_frames=0),)).is_null

    def test_unknown_top_level_key_rejected(self):
        with pytest.raises(FaultPlanFormatError):
            netplan_from_dict({"seed": 0, "jitter": []})

    def test_unknown_spec_key_rejected(self):
        with pytest.raises(FaultPlanFormatError):
            netplan_from_dict(
                {"drops": [{"after_frames": 1, "surprise": True}]}
            )

    def test_invalid_spec_values_rejected(self):
        with pytest.raises(FaultPlanFormatError):
            netplan_from_dict({"drops": [{"after_frames": -1}]})
        with pytest.raises(FaultPlanFormatError):
            netplan_from_dict({"cuts": [{"frame": 0, "direction": "sideways"}]})
        with pytest.raises(FaultPlanFormatError):
            netplan_from_dict({"seed": "zero"})

    def test_spec_validation_is_eager(self):
        with pytest.raises(ValueError):
            CoalesceSpec(frames=1)
        with pytest.raises(ValueError):
            StallSpec(frame=0, delay_s=-1.0)

    def test_storm_schedule_is_seeded(self):
        plan = NetworkFaultPlan(
            seed=42,
            reconnect_storms=(
                ReconnectStormSpec(
                    connections=8, after_frames=2, jitter_frames=5
                ),
            ),
        )
        first = ChaosProxy("127.0.0.1", 1, plan)._storm_drops
        second = ChaosProxy("127.0.0.1", 1, plan)._storm_drops
        assert first == second
        assert set(first) == set(range(8))
        assert all(2 <= point <= 7 for point in first.values())


async def settle(extra_tasks=0):
    """Wait for background tasks (connection handlers) to finish."""
    deadline = asyncio.get_running_loop().time() + 5.0
    while asyncio.get_running_loop().time() < deadline:
        others = [
            t for t in asyncio.all_tasks() if t is not asyncio.current_task()
        ]
        if len(others) <= extra_tasks:
            return
        await asyncio.sleep(0.01)
    raise AssertionError(f"dangling tasks: {others}")


async def chaos_replay(
    config,
    plan,
    *,
    session=True,
    request_timeout=1.0,
    window=32,
    policy=None,
    breaker=None,
    flush=True,
):
    """Replay a trace through a chaos proxy; returns the full picture."""
    engine = ServiceEngine(config, make_trace())
    server = ServiceServer(engine, policy=policy)
    await server.start()
    proxy = ChaosProxy("127.0.0.1", server.port, plan)
    await proxy.start()
    client = ServiceClient(
        "127.0.0.1",
        proxy.port,
        session=session,
        request_timeout=request_timeout,
        breaker=breaker,
    )
    try:
        await client.connect()
        outcomes = await client.replay(make_trace().packets, window=window)
        flush_reply = await client.flush() if flush else None
    finally:
        await client.close()
        await proxy.aclose()
        await server.shutdown()
    await settle()
    assert proxy.live_links == 0
    assert not server._connections
    return outcomes, flush_reply, server, proxy, client


def assert_byte_parity(flush_reply, offline):
    restored = result_from_dict(flush_reply["result"])
    assert restored == offline
    assert json.dumps(result_to_dict(offline), sort_keys=True) == json.dumps(
        result_to_dict(restored), sort_keys=True
    )


class TestChaosParity:
    """Each fault class: lossless, byte-identical to offline simulate."""

    def run_plan(self, plan, **kwargs):
        config = hypertrio_config()
        offline = offline_result(config)
        outcomes, flush_reply, server, proxy, client = asyncio.run(
            chaos_replay(config, plan, **kwargs)
        )
        assert len(outcomes) == PACKETS
        assert all(o["type"] == protocol.RESULT for o in outcomes)
        assert_byte_parity(flush_reply, offline)
        return server, proxy, client

    def test_null_plan_is_byte_transparent(self):
        # Fault-free wire: the proxy must not perturb a single byte, for
        # a legacy (session-less) client with no supervision opt-ins.
        server, proxy, client = self.run_plan(
            None, session=False, request_timeout=None
        )
        assert proxy.transparent()
        assert proxy.total_faults == 0
        assert client.reconnects == 0

    def test_connection_drop_mid_stream(self):
        plan = NetworkFaultPlan(drops=(DropSpec(after_frames=20),))
        server, proxy, client = self.run_plan(plan)
        assert proxy.faults_injected["drop"] == 1
        assert client.reconnects >= 1
        assert server.conn_counters["reconnects"] >= 1
        assert server.engine.processed == PACKETS  # exactly once

    def test_mid_frame_cut_of_a_request(self):
        plan = NetworkFaultPlan(cuts=(CutSpec(frame=8, direction="request"),))
        server, proxy, client = self.run_plan(plan)
        assert proxy.faults_injected["cut"] == 1
        assert client.reconnects >= 1
        assert server.engine.processed == PACKETS

    def test_corrupted_response_frame(self):
        # Frame 0 of the response stream is hello_ok; corrupt a result.
        plan = NetworkFaultPlan(
            corruptions=(CorruptSpec(frame=5, direction="response", offset=9),)
        )
        server, proxy, client = self.run_plan(plan)
        assert proxy.faults_injected["corrupt"] == 1
        assert client.reconnects >= 1
        assert server.conn_counters["resends_served"] >= 1

    def test_corrupted_request_frame(self):
        # The server answers bad_request to the torn JSON; the client's
        # deadline forces the resend that the session dedups.
        plan = NetworkFaultPlan(
            corruptions=(CorruptSpec(frame=6, direction="request", offset=4),)
        )
        server, proxy, client = self.run_plan(
            plan, request_timeout=0.4, window=4
        )
        assert proxy.faults_injected["corrupt"] == 1
        assert server.engine.processed == PACKETS

    def test_stalled_request_hits_the_deadline(self):
        plan = NetworkFaultPlan(
            stalls=(StallSpec(frame=10, delay_s=1.5, direction="request"),)
        )
        server, proxy, client = self.run_plan(
            plan, request_timeout=0.3, window=4
        )
        assert proxy.faults_injected["stall"] == 1
        assert client.request_timeouts >= 1
        assert server.engine.processed == PACKETS

    def test_split_and_coalesced_writes_are_reassembled(self):
        plan = NetworkFaultPlan(
            splits=(SplitSpec(chunk_bytes=7, direction="request"),),
            coalesces=(CoalesceSpec(frames=5, direction="response"),),
        )
        server, proxy, client = self.run_plan(plan)
        # Re-chunking preserves every byte: still transparent.
        assert proxy.transparent()
        assert client.reconnects == 0

    def test_reconnect_storm(self):
        plan = NetworkFaultPlan(
            seed=3,
            reconnect_storms=(
                ReconnectStormSpec(
                    connections=3, after_frames=2, jitter_frames=3
                ),
            ),
        )
        server, proxy, client = self.run_plan(
            plan, breaker=CircuitBreaker(failure_threshold=8)
        )
        assert proxy.faults_injected["drop"] == 3
        assert client.reconnects >= 3
        assert server.conn_counters["opened"] >= 4
        assert server.conn_counters["reconnects"] >= 3
        assert server.engine.processed == PACKETS

    def test_combined_plan_all_classes_at_once(self):
        # One fault class per proxied connection, early enough in each
        # connection's life to be deterministically reached: the client
        # survives stall -> corrupt -> cut -> drop, then finishes on a
        # split/coalesced but lossless fifth connection.
        plan = NetworkFaultPlan(
            seed=11,
            stalls=(
                StallSpec(
                    frame=2, delay_s=1.0, direction="response", connection=0
                ),
            ),
            corruptions=(
                CorruptSpec(
                    frame=4, direction="response", offset=3, connection=1
                ),
            ),
            cuts=(CutSpec(frame=6, direction="request", connection=2),),
            drops=(DropSpec(after_frames=10, connection=3),),
            splits=(SplitSpec(chunk_bytes=11, direction="response", connection=4),),
            coalesces=(CoalesceSpec(frames=3, direction="request", connection=4),),
        )
        server, proxy, client = self.run_plan(
            plan, request_timeout=0.4, window=8
        )
        assert set(proxy.faults_injected) == {"stall", "corrupt", "cut", "drop"}
        assert client.reconnects >= 4
        assert server.engine.processed == PACKETS


class TestClientHardening:
    def test_connect_survives_mid_handshake_drops(self):
        # The first two proxied connections die on the hello frame; the
        # client's in-loop handshake retry rides through both.
        config = hypertrio_config()
        plan = NetworkFaultPlan(
            drops=(
                DropSpec(after_frames=0, connection=0),
                DropSpec(after_frames=0, connection=1),
            )
        )

        async def run():
            engine = ServiceEngine(config, make_trace())
            server = ServiceServer(engine)
            await server.start()
            proxy = ChaosProxy("127.0.0.1", server.port, plan)
            await proxy.start()
            client = ServiceClient("127.0.0.1", proxy.port, session=True)
            try:
                hello = await client.connect()
            finally:
                await client.close()
                await proxy.aclose()
                await server.shutdown()
            await settle()
            return hello, server, proxy, client

        hello, server, proxy, client = asyncio.run(run())
        assert hello["type"] == protocol.HELLO_OK
        assert hello["session"] == client.session_id
        assert client.connect_attempts >= 3
        assert proxy.faults_injected["drop"] == 2
        # The surviving hello reported its retry count to the server.
        assert server.conn_counters["handshake_retries"] >= 2

    def test_connect_gives_up_after_timeout(self):
        async def run():
            client = ServiceClient(
                "127.0.0.1", 1, connect_timeout=0.3, backoff_cap=0.05
            )
            with pytest.raises(OSError):
                await client.connect()
            return client

        client = asyncio.run(run())
        assert client.connect_attempts >= 2

    def test_typed_handshake_refusal_is_not_retried(self):
        async def run():
            engine = ServiceEngine(hypertrio_config(), make_trace())
            server = ServiceServer(engine)
            await server.start()
            client = ServiceClient("127.0.0.1", server.port, sid=10_000)
            try:
                with pytest.raises(Exception) as excinfo:
                    await client.connect()
            finally:
                await client.close()
                await server.shutdown()
            await settle()
            return client, excinfo.value

        client, error = asyncio.run(run())
        assert "handshake failed" in str(error)
        assert client.connect_attempts == 1


class TestCircuitBreaker:
    def test_state_machine_and_cooldown_ladder(self):
        clock = [0.0]
        sleeps = []

        async def fake_sleep(seconds):
            sleeps.append(seconds)
            clock[0] += seconds

        async def run():
            breaker = CircuitBreaker(
                failure_threshold=2,
                cooldown_s=1.0,
                clock=lambda: clock[0],
                sleep=fake_sleep,
            )
            await breaker.before_attempt()  # closed: no wait
            assert not sleeps
            breaker.record_failure()
            assert breaker.state == "closed"
            breaker.record_failure()
            assert breaker.state == "open"
            assert breaker.trips == 1
            await breaker.before_attempt()  # waits out the cooldown
            assert breaker.state == "half_open"
            assert len(sleeps) == 1 and sleeps[0] > 0
            # A failed probe re-opens immediately, one rung higher.
            breaker.record_failure()
            assert breaker.state == "open"
            assert breaker.trips == 2
            await breaker.before_attempt()
            breaker.record_success()
            assert breaker.state == "closed"
            assert breaker.trips == 0
            assert breaker.consecutive_failures == 0

        asyncio.run(run())

    def test_cooldown_is_capped(self):
        breaker = CircuitBreaker(
            failure_threshold=1, cooldown_s=1.0, max_cooldown_s=2.0,
            clock=lambda: 0.0,
        )
        for _ in range(10):
            breaker.state = "closed"
            breaker.record_failure()
        assert breaker._open_until <= 2.0


class TestSessionPickle:
    def test_session_state_drops_live_references(self):
        from repro.service.server import _Session

        session = _Session("s1")
        session.next_seq = 7
        session.acked = 3
        session.cache = {5: {"type": "result", "seq": 5}}
        session.held[9] = ("conn", 0, "packet", None)
        session.waiters[6] = "conn"
        restored = pickle.loads(pickle.dumps(session))
        assert restored.session_id == "s1"
        assert restored.next_seq == 7
        assert restored.acked == 3
        assert restored.cache == session.cache
        assert restored.held == {}
        assert restored.waiters == {}
