"""Property-based tests (hypothesis) for core data structures."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.partitioned import PartitionedCache, partition_of
from repro.cache.setassoc import FullyAssociativeCache, SetAssociativeCache
from repro.core.ptb import PendingTranslationBuffer
from repro.mem.address import (
    PAGE_SHIFT_2M,
    PAGE_SHIFT_4K,
    level_indices,
    page_base,
    page_number,
    page_offset,
)
from repro.mem.allocator import FrameAllocator
from repro.trace.constructor import Interleaving, interleave
from repro.trace.records import PacketRecord, compute_trace_stats

addresses = st.integers(min_value=0, max_value=(1 << 48) - 1)
page_shifts = st.sampled_from([PAGE_SHIFT_4K, PAGE_SHIFT_2M])


class TestAddressProperties:
    @given(addresses, page_shifts)
    def test_base_plus_offset_reconstructs(self, address, shift):
        assert page_base(address, shift) + page_offset(address, shift) == address

    @given(addresses, page_shifts)
    def test_page_number_consistent_with_base(self, address, shift):
        assert page_number(address, shift) << shift == page_base(address, shift)

    @given(addresses)
    def test_level_indices_reconstruct_upper_bits(self, address):
        indices = level_indices(address)
        rebuilt = 0
        for index in indices:
            rebuilt = (rebuilt << 9) | index
        assert rebuilt == address >> PAGE_SHIFT_4K

    @given(addresses)
    def test_level_indices_in_range(self, address):
        assert all(0 <= index < 512 for index in level_indices(address))


class TestAllocatorProperties:
    @given(st.lists(st.integers(min_value=1, max_value=16), min_size=1, max_size=40))
    def test_allocations_never_overlap(self, counts):
        allocator = FrameAllocator(base=0)
        regions = []
        for count in counts:
            start = allocator.allocate(count)
            regions.append((start, start + count * 4096))
        regions.sort()
        for (_, end_a), (start_b, _) in zip(regions, regions[1:]):
            assert end_a <= start_b

    @given(st.integers(min_value=1, max_value=30))
    def test_huge_allocations_always_aligned(self, warmup):
        allocator = FrameAllocator(base=0)
        allocator.allocate(warmup)
        assert allocator.allocate_huge() % (2 * 1024 * 1024) == 0


cache_keys = st.tuples(
    st.integers(min_value=0, max_value=31), st.integers(min_value=0, max_value=300)
)
cache_ops = st.lists(
    st.tuples(st.sampled_from(["insert", "lookup", "invalidate"]), cache_keys),
    max_size=200,
)


class TestCacheProperties:
    @given(cache_ops, st.sampled_from(["lru", "lfu", "fifo", "random"]))
    @settings(max_examples=60, deadline=None)
    def test_capacity_invariant(self, operations, policy):
        cache = SetAssociativeCache(num_entries=16, ways=4, policy=policy)
        for operation, key in operations:
            if operation == "insert":
                cache.insert(key, key)
            elif operation == "lookup":
                cache.lookup(key)
            else:
                cache.invalidate(key)
            assert len(cache) <= 16
            for index in range(cache.num_sets):
                assert cache.set_occupancy(index) <= 4

    @given(cache_ops, st.sampled_from(["lru", "lfu"]))
    @settings(max_examples=60, deadline=None)
    def test_lookup_after_insert_without_interference(self, operations, policy):
        """An inserted key is found unless something else was inserted into
        its set afterwards."""
        cache = FullyAssociativeCache(num_entries=256, policy=policy)
        inserted = set()
        for operation, key in operations:
            if operation == "insert":
                cache.insert(key, key)
                inserted.add(key)
            elif operation == "invalidate":
                cache.invalidate(key)
                inserted.discard(key)
        # 256 entries > max distinct keys in the op list: nothing evicted.
        for key in inserted:
            assert cache.probe(key) == key

    @given(cache_ops)
    @settings(max_examples=60, deadline=None)
    def test_stats_accounting_consistent(self, operations):
        cache = SetAssociativeCache(num_entries=8, ways=2)
        lookups = 0
        for operation, key in operations:
            if operation == "insert":
                cache.insert(key, key)
            elif operation == "lookup":
                cache.lookup(key)
                lookups += 1
            else:
                cache.invalidate(key)
        assert cache.stats.hits + cache.stats.misses == lookups
        assert cache.stats.fills >= len(cache)

    @given(st.lists(cache_keys, min_size=1, max_size=100))
    @settings(max_examples=60, deadline=None)
    def test_partition_isolation_invariant(self, keys):
        """No key is ever stored in a set outside its SID's partition."""
        cache = PartitionedCache(num_entries=64, ways=8, num_partitions=8)
        for key in keys:
            cache.insert(key, key)
            sid = key[0]
            partition = partition_of(sid, 8)
            # Every resident key of this partition's row belongs to it.
            total = sum(
                cache.partition_occupancy(p) for p in range(8)
            )
            assert total == len(cache)
        for key in keys:
            value = cache.probe(key)
            if value is not None:
                assert value == key


class TestPtbProperties:
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=1e5),
                st.floats(min_value=0, max_value=1e4),
            ),
            max_size=100,
        ),
        st.integers(min_value=1, max_value=16),
    )
    @settings(max_examples=60, deadline=None)
    def test_occupancy_never_exceeds_capacity(self, jobs, capacity):
        ptb = PendingTranslationBuffer(capacity)
        now = 0.0
        for arrival_delta, latency in jobs:
            now += arrival_delta
            ptb.issue(now, latency)
            assert ptb.occupancy(now) <= capacity

    @given(st.lists(st.floats(min_value=0.1, max_value=1e4), max_size=60))
    @settings(max_examples=60, deadline=None)
    def test_completions_monotone_under_serialisation(self, latencies):
        """With one entry, completion times are strictly increasing."""
        ptb = PendingTranslationBuffer(1)
        last = 0.0
        for latency in latencies:
            completion = ptb.issue(0.0, latency)
            assert completion > last
            last = completion


class TestInterleaveProperties:
    @given(
        st.lists(st.integers(min_value=1, max_value=30), min_size=1, max_size=8),
        st.sampled_from(["RR1", "RR4", "RAND1", "RAND2"]),
        st.integers(min_value=0, max_value=5),
    )
    @settings(max_examples=60, deadline=None)
    def test_interleave_preserves_per_tenant_order_and_stops_early(
        self, stream_sizes, scheme_text, seed
    ):
        scheme = Interleaving.parse(scheme_text)

        def make_stream(sid, size):
            # A function scope per stream avoids generator late binding.
            return iter(
                PacketRecord(sid=sid, giovas=(index, index + 1, index + 2))
                for index in range(size)
            )

        streams = [
            make_stream(sid, size) for sid, size in enumerate(stream_sizes)
        ]
        merged = list(interleave(streams, scheme, seed=seed))
        # Per-tenant packet order is preserved.
        per_tenant = {}
        for packet in merged:
            per_tenant.setdefault(packet.sid, []).append(packet.giovas[0])
        for sequence in per_tenant.values():
            assert sequence == sorted(sequence)
        # No tenant exceeds its stream size.
        for sid, sequence in per_tenant.items():
            assert len(sequence) <= stream_sizes[sid]

    @given(st.lists(st.integers(min_value=0, max_value=7), max_size=150))
    @settings(max_examples=60, deadline=None)
    def test_trace_stats_totals(self, sids):
        packets = [PacketRecord(sid=sid, giovas=(1, 2, 3)) for sid in sids]
        stats = compute_trace_stats(packets)
        assert stats.total_translations == 3 * len(packets)
        if packets:
            assert (
                stats.min_translations_per_tenant
                <= stats.max_translations_per_tenant
            )
