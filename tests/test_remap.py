"""Tests for driver unmap/remap modelling and the page-size option."""

import dataclasses

import pytest

from repro.core.config import base_config, hypertrio_config
from repro.mem.address import PAGE_SHIFT_2M, PAGE_SHIFT_4K
from repro.sim.simulator import HyperSimulator
from repro.trace.constructor import construct_trace
from repro.trace.records import PacketRecord
from repro.trace.tenant import IPERF3, MEDIASTREAM


def _remap_profile(**overrides):
    return dataclasses.replace(
        MEDIASTREAM, remap_on_advance=True, jump_probability=0.0, **overrides
    )


class TestRemapIoPage:
    def test_remap_changes_hpa(self, address_space):
        address_space.map_io_page(0xBBE0_0000, PAGE_SHIFT_2M)
        before = address_space.translate(0xBBE0_0000)
        address_space.remap_io_page(0xBBE0_0000, PAGE_SHIFT_2M)
        after = address_space.translate(0xBBE0_0000)
        assert after != before

    def test_remap_preserves_giova(self, address_space):
        address_space.map_io_page(0x3480_0000)
        address_space.remap_io_page(0x3480_0000)
        # Still translatable at the same gIOVA.
        assert address_space.translate(0x3480_0000) > 0


class TestRemapTraces:
    def test_invalidations_emitted_on_page_advance(self):
        trace = construct_trace(
            _remap_profile(), num_tenants=2, packets_per_tenant=2000,
            max_packets=1500,
        )
        events = [p for p in trace.packets if p.invalidations]
        assert events
        # Invalidated pages are data pages (4 KB page numbers in the 0xbbe
        # window).
        for packet in events:
            for page in packet.invalidations:
                assert page >= 0xBBE00

    def test_no_invalidations_without_remap(self):
        trace = construct_trace(
            MEDIASTREAM, num_tenants=2, packets_per_tenant=2000, max_packets=800
        )
        assert all(not p.invalidations for p in trace.packets)

    def test_json_round_trip_keeps_invalidations(self):
        record = PacketRecord(sid=1, giovas=(1, 2, 3), invalidations=(0xBBE00,))
        assert PacketRecord.from_json(record.to_json()) == record

    def test_simulation_with_remap_runs_clean(self):
        trace = construct_trace(
            _remap_profile(), num_tenants=4, packets_per_tenant=2000,
            max_packets=1200,
        )
        result = HyperSimulator(hypertrio_config(), trace).run(warmup_packets=300)
        assert 0.0 < result.link_utilization <= 1.0
        assert result.cache_stats["devtlb"].invalidations > 0

    def test_remap_costs_bandwidth_at_fast_transitions(self):
        """With very short page periods, remapping forces constant
        re-walks and costs Base bandwidth versus the no-remap variant."""
        def run(remap):
            profile = dataclasses.replace(
                MEDIASTREAM, remap_on_advance=remap, jump_probability=0.0,
                uses_per_page=6,
            )
            trace = construct_trace(
                profile, num_tenants=2, packets_per_tenant=100_000,
                max_packets=1200,
            )
            return HyperSimulator(base_config(), trace).run(warmup_packets=300)

        with_remap = run(True)
        without = run(False)
        assert (
            with_remap.achieved_bandwidth_gbps
            <= without.achieved_bandwidth_gbps + 1e-6
        )


class TestPageSizeOption:
    def test_4k_data_pages_walk_24_accesses(self):
        profile = dataclasses.replace(IPERF3, huge_data_pages=False)
        trace = construct_trace(profile, num_tenants=1, packets_per_tenant=10)
        walker = trace.system.walker_for(0)
        data_giova = trace.packets[0].giovas[1]
        assert walker.walk(data_giova).total_memory_accesses == 24

    def test_2m_data_pages_walk_19_accesses(self):
        trace = construct_trace(IPERF3, num_tenants=1, packets_per_tenant=10)
        walker = trace.system.walker_for(0)
        data_giova = trace.packets[0].giovas[1]
        assert walker.walk(data_giova).total_memory_accesses == 19

    def test_page_size_affects_walk_latency(self):
        """4 KB data buffers make cold misses costlier (the paper runs
        with huge pages enabled in the guest)."""
        def mean_latency(huge):
            profile = dataclasses.replace(MEDIASTREAM, huge_data_pages=huge)
            trace = construct_trace(
                profile, num_tenants=32, packets_per_tenant=100_000,
                max_packets=1000,
            )
            result = HyperSimulator(base_config(), trace).run()
            return result.latency.mean_ns

        assert mean_latency(huge=False) >= mean_latency(huge=True) * 0.95
