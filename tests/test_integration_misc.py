"""Cross-cutting integration tests: engine combinations and teardown paths."""

import pytest

from repro.core.config import base_config, hypertrio_config
from repro.iommu.iommu import Iommu
from repro.sim.des import EventDrivenSimulator
from repro.sim.simulator import HyperSimulator
from repro.sim.telemetry import Telemetry
from repro.trace.constructor import construct_trace
from repro.trace.tenant import IPERF3, MEDIASTREAM
from repro.trace.validate import validate_trace


def _trace(**overrides):
    defaults = dict(
        profile=MEDIASTREAM, num_tenants=8, packets_per_tenant=100_000,
        interleaving="RR1", max_packets=700,
    )
    defaults.update(overrides)
    profile = defaults.pop("profile")
    return construct_trace(profile, **defaults)


class TestDesWithTelemetry:
    def test_both_engines_produce_same_windows(self):
        analytic_telemetry = Telemetry(window_packets=100)
        evented_telemetry = Telemetry(window_packets=100)
        HyperSimulator(
            hypertrio_config(), _trace(), telemetry=analytic_telemetry
        ).run()
        EventDrivenSimulator(
            hypertrio_config(), _trace(), telemetry=evented_telemetry
        ).run()
        assert len(analytic_telemetry.windows) == len(evented_telemetry.windows)
        for a, b in zip(analytic_telemetry.windows, evented_telemetry.windows):
            assert a.bytes == b.bytes
            assert a.devtlb_hits == b.devtlb_hits
            assert a.end_ns == pytest.approx(b.end_ns)


class TestTenantTeardown:
    def test_invalidate_tenant_across_partitioned_caches(self):
        trace = _trace()
        simulator = HyperSimulator(hypertrio_config(), trace)
        simulator.run(max_packets=300)
        iommu: Iommu = simulator.path.iommu
        target = trace.packets[0].sid
        iommu.invalidate_tenant(target)
        for cache in (iommu.iotlb, iommu.nested_tlb, iommu.pte_cache):
            assert all(key[0] != target for key in cache.keys())

    def test_other_tenants_survive_teardown(self):
        trace = _trace()
        simulator = HyperSimulator(hypertrio_config(), trace)
        simulator.run(max_packets=300)
        iommu = simulator.path.iommu
        before = len(iommu.nested_tlb)
        iommu.invalidate_tenant(trace.packets[0].sid)
        assert 0 < len(iommu.nested_tlb) <= before


class TestTraceReusability:
    def test_same_trace_can_be_simulated_twice(self):
        """Simulators own their cache state; the trace (and its page
        tables) is read-only and reusable."""
        trace = _trace()
        first = HyperSimulator(base_config(), trace).run()
        second = HyperSimulator(base_config(), trace).run()
        assert second.achieved_bandwidth_gbps == pytest.approx(
            first.achieved_bandwidth_gbps
        )

    def test_trace_still_valid_after_simulation(self):
        trace = _trace()
        HyperSimulator(hypertrio_config(), trace).run()
        assert validate_trace(trace, sample_stride=7).ok


class TestMaxPacketsInteractions:
    def test_max_packets_shorter_than_warmup_rejected(self):
        trace = _trace()
        simulator = HyperSimulator(base_config(), trace)
        with pytest.raises(ValueError):
            simulator.run(max_packets=100, warmup_packets=100)

    def test_max_packets_with_warmup(self):
        trace = _trace()
        result = HyperSimulator(base_config(), trace).run(
            max_packets=400, warmup_packets=100
        )
        assert result.packets.arrived == 400


class TestSmallestConfigurations:
    def test_single_tenant_single_packet(self):
        trace = construct_trace(IPERF3, 1, 10, max_packets=1)
        result = HyperSimulator(base_config(), trace).run()
        assert result.packets.accepted == 1
        assert result.latency.count == 3

    def test_one_way_devtlb(self):
        from repro.core.config import TlbConfig

        config = base_config().with_overrides(
            devtlb=TlbConfig(num_entries=8, ways=1, policy="lru")
        )
        trace = construct_trace(IPERF3, 2, 10_000, max_packets=200)
        result = HyperSimulator(config, trace).run()
        assert 0.0 < result.link_utilization <= 1.0
