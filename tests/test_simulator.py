"""Integration tests for the HyperSIO performance model."""

import dataclasses

import pytest

from repro.core.config import TlbConfig, base_config, hypertrio_config
from repro.sim.simulator import HyperSimulator, simulate
from repro.trace.constructor import construct_trace
from repro.trace.tenant import IPERF3, MEDIASTREAM


class TestBasicRuns:
    def test_result_fields_populated(self, base_cfg, small_trace):
        result = simulate(base_cfg, small_trace)
        assert result.config_name == "Base"
        assert result.benchmark == "mediastream"
        assert result.num_tenants == 4
        assert result.interleaving == "RR1"
        assert result.elapsed_ns > 0
        assert result.packets.arrived == len(small_trace.packets)
        assert 0.0 <= result.link_utilization <= 1.0

    def test_all_packets_eventually_processed(self, base_cfg, small_trace):
        """Dropped packets retry at the next slot, so the whole trace is
        consumed."""
        result = simulate(base_cfg, small_trace)
        assert result.packets.bytes_processed == sum(
            p.size_bytes for p in small_trace.packets
        )

    def test_latency_stats_cover_all_requests(self, base_cfg, small_trace):
        result = simulate(base_cfg, small_trace)
        assert result.latency.count == 3 * len(small_trace.packets)
        assert result.latency.mean_ns > 0

    def test_max_packets_truncates(self, base_cfg, small_trace):
        result = simulate(base_cfg, small_trace, max_packets=100)
        assert result.packets.arrived == 100

    def test_deterministic(self, hyper_cfg, small_trace):
        a = simulate(hyper_cfg, small_trace)
        # A fresh trace because cache state lives in the path, not the trace.
        trace = construct_trace(
            MEDIASTREAM, 4, 50_000, interleaving="RR1", max_packets=600
        )
        b = simulate(hyper_cfg, trace)
        assert a.achieved_bandwidth_gbps == pytest.approx(
            b.achieved_bandwidth_gbps
        )

    def test_warmup_must_be_shorter_than_trace(self, base_cfg, small_trace):
        simulator = HyperSimulator(base_cfg, small_trace)
        with pytest.raises(ValueError):
            simulator.run(warmup_packets=len(small_trace.packets))


class TestNativeMode:
    def test_native_achieves_line_rate(self, base_cfg, small_trace):
        result = simulate(base_cfg, small_trace, native=True)
        assert result.link_utilization == pytest.approx(1.0, abs=0.01)

    def test_native_never_drops(self, base_cfg, small_trace):
        result = simulate(base_cfg, small_trace, native=True)
        assert result.packets.dropped == 0


class TestCacheBehaviour:
    def test_few_tenants_hit_devtlb(self, base_cfg, iperf_trace):
        result = simulate(base_cfg, iperf_trace)
        assert result.hit_rate("devtlb") > 0.9

    def test_devtlb_stats_exposed(self, base_cfg, small_trace):
        result = simulate(base_cfg, small_trace)
        assert result.cache_stats["devtlb"].accesses == result.latency.count

    def test_prefetch_stats_only_for_hypertrio(self, base_cfg, hyper_cfg,
                                               small_trace):
        base_result = simulate(base_cfg, small_trace)
        assert "prefetch_buffer" not in base_result.cache_stats
        trace = construct_trace(
            MEDIASTREAM, 4, 50_000, interleaving="RR1", max_packets=600
        )
        hyper_result = simulate(hyper_cfg, trace)
        assert "prefetch_buffer" in hyper_result.cache_stats


class TestPtbEffects:
    def test_base_ptb_saturates_under_misses(self):
        trace = construct_trace(
            MEDIASTREAM, 32, 50_000, interleaving="RR1", max_packets=800
        )
        result = simulate(base_config(), trace)
        assert result.ptb.max_occupancy == 1
        assert result.packets.dropped > 0

    def test_larger_ptb_reduces_drops(self):
        small_drops = None
        for entries, expect_fewer in ((1, False), (32, True)):
            trace = construct_trace(
                MEDIASTREAM, 32, 50_000, interleaving="RR1", max_packets=800
            )
            config = base_config().with_overrides(ptb_entries=entries)
            result = simulate(config, trace)
            if expect_fewer:
                assert result.packets.dropped < small_drops
            else:
                small_drops = result.packets.dropped


class TestOracleIntegration:
    def test_oracle_devtlb_runs_and_beats_lru(self):
        def run(policy):
            trace = construct_trace(
                MEDIASTREAM, 8, 50_000, interleaving="RR1", max_packets=700
            )
            config = base_config().with_overrides(
                devtlb=TlbConfig(num_entries=64, ways=8, policy=policy)
            )
            return simulate(config, trace)

        oracle_result = run("oracle")
        lru_result = run("lru")
        assert (
            oracle_result.hit_rate("devtlb")
            >= lru_result.hit_rate("devtlb") - 1e-9
        )


class TestWalkerPool:
    def test_bounded_walkers_slow_down_misses(self):
        def run(walkers):
            trace = construct_trace(
                MEDIASTREAM, 32, 50_000, interleaving="RR1", max_packets=600
            )
            config = hypertrio_config().with_overrides(
                iommu_walkers=walkers,
                prefetch=dataclasses.replace(
                    hypertrio_config().prefetch, enabled=False
                ),
            )
            return simulate(config, trace)

        bounded = run(1)
        unbounded = run(None)
        assert bounded.achieved_bandwidth_gbps <= unbounded.achieved_bandwidth_gbps


class TestHyperTrioVsBase:
    def test_hypertrio_wins_at_scale(self):
        """The headline claim at small scale: HyperTRIO sustains far more
        bandwidth than Base once tenants thrash the DevTLB."""
        kw = dict(packets_per_tenant=50_000, interleaving="RR1", max_packets=1500)
        base_result = simulate(
            base_config(), construct_trace(MEDIASTREAM, 64, **kw)
        )
        hyper_result = simulate(
            hypertrio_config(), construct_trace(MEDIASTREAM, 64, **kw)
        )
        assert hyper_result.achieved_bandwidth_gbps > (
            3 * base_result.achieved_bandwidth_gbps
        )

    def test_equal_at_tiny_tenant_counts(self):
        kw = dict(packets_per_tenant=50_000, interleaving="RR1", max_packets=800)
        base_result = simulate(base_config(), construct_trace(IPERF3, 2, **kw))
        hyper_result = simulate(
            hypertrio_config(), construct_trace(IPERF3, 2, **kw)
        )
        assert base_result.link_utilization > 0.85
        assert hyper_result.link_utilization > 0.85
