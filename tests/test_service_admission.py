"""Admission-control edge cases for the translation service.

Pins the ISSUE's four edge cases: a zero-rate tenant, a burst exactly at
bucket capacity, backpressure release after the modeled PTB drains, and
a client disconnecting mid-stream without leaking engine state.
"""

import asyncio

import pytest

from repro.core.config import base_config, hypertrio_config
from repro.core.ptb import PendingTranslationBuffer
from repro.service import protocol
from repro.service.admission import (
    AdmissionConfig,
    AdmissionController,
    TokenBucket,
)
from repro.service.client import ServiceClient
from repro.service.engine import ServiceEngine
from repro.service.server import ServiceServer, _Connection
from repro.trace.constructor import construct_trace
from repro.trace.tenant import profile_by_name


def make_trace(num_tenants=4, packets=80):
    return construct_trace(
        profile_by_name("mediastream"),
        num_tenants=num_tenants,
        packets_per_tenant=200_000,
        max_packets=packets,
    )


class TestAdmissionConfig:
    def test_defaults_are_a_noop(self):
        controller = AdmissionController()
        for _ in range(10_000):
            assert controller.acquire(0, 0.0) is None
        assert controller.check_backpressure(0, 10**9) is False

    def test_rejects_bad_mode(self):
        with pytest.raises(ValueError):
            AdmissionConfig(backpressure_mode="drop")

    def test_rejects_bad_burst(self):
        with pytest.raises(ValueError):
            AdmissionConfig(burst=0)

    def test_low_watermark_defaults_to_half_high(self):
        assert AdmissionConfig(ptb_high_watermark=8).low_watermark() == 4
        assert (
            AdmissionConfig(
                ptb_high_watermark=8, ptb_low_watermark=1
            ).low_watermark()
            == 1
        )


class TestTokenBucket:
    def test_burst_exactly_at_capacity(self):
        bucket = TokenBucket(rate_per_s=1.0, capacity=5)
        # A cold bucket admits exactly `capacity` back-to-back requests.
        assert [bucket.try_take(0.0) for _ in range(5)] == [True] * 5
        assert bucket.try_take(0.0) is False
        # One second refills exactly one token at rate 1/s.
        assert bucket.try_take(1.0) is True
        assert bucket.try_take(1.0) is False

    def test_zero_rate_permanently_empty(self):
        bucket = TokenBucket(rate_per_s=0.0, capacity=64)
        assert bucket.try_take(0.0) is False
        assert bucket.try_take(1e9) is False

    def test_refill_caps_at_capacity(self):
        bucket = TokenBucket(rate_per_s=1000.0, capacity=2)
        assert bucket.try_take(0.0)
        assert bucket.tokens == pytest.approx(1.0)
        assert bucket.try_take(100.0)  # long idle: refill capped at 2
        assert bucket.tokens == pytest.approx(1.0)


class TestController:
    def test_zero_rate_tenant_denied_everything(self):
        controller = AdmissionController(
            AdmissionConfig(tenant_rates={3: 0.0})
        )
        assert controller.acquire(3, 0.0) == protocol.E_RATE_LIMITED
        assert controller.acquire(3, 100.0) == protocol.E_RATE_LIMITED
        # Other tenants are unaffected (no global rate configured).
        assert controller.acquire(0, 0.0) is None
        assert controller.stats[3].rate_limited == 2
        assert controller.stats[3].admitted == 0

    def test_queue_depth_cap_and_release(self):
        controller = AdmissionController(AdmissionConfig(max_queue_depth=2))
        assert controller.acquire(0, 0.0) is None
        assert controller.acquire(0, 0.0) is None
        assert controller.acquire(0, 0.0) == protocol.E_QUEUE_FULL
        controller.release(0)
        assert controller.acquire(0, 0.0) is None
        assert controller.in_flight(0) == 2

    def test_backpressure_hysteresis(self):
        controller = AdmissionController(
            AdmissionConfig(ptb_high_watermark=8, ptb_low_watermark=2)
        )
        assert controller.check_backpressure(0, 7) is False
        assert controller.check_backpressure(0, 8) is True
        # Latched: stays on anywhere above the low watermark...
        assert controller.check_backpressure(0, 5) is True
        assert controller.check_backpressure(0, 3) is True
        # ...and releases only once occupancy reaches it.
        assert controller.check_backpressure(0, 2) is False
        assert controller.check_backpressure(0, 3) is False

    def test_reset_runtime_keeps_cumulative_stats(self):
        controller = AdmissionController(
            AdmissionConfig(rate_per_s=10.0, max_queue_depth=4)
        )
        controller.acquire(0, 0.0)
        controller.check_backpressure(0, 0)
        controller.reset_runtime()
        assert controller.in_flight(0) == 0
        assert controller.stats[0].admitted == 1
        for bucket in controller._buckets.values():
            assert bucket.last is None


class TestPtbDrain:
    def test_drain_time_to_target(self):
        ptb = PendingTranslationBuffer(num_entries=8)
        for t in (10.0, 20.0, 30.0, 40.0):
            ptb.issue(now=0.0, latency_ns=t)  # completes at t (no queueing)
        assert ptb.occupancy(0.0) == 4
        # Reaching occupancy 2 means the 2 earliest completions retired.
        assert ptb.drain_time_to(2) == 20.0
        assert ptb.drain_time_to(4) == 0.0
        assert ptb.drain_time_to(0) == 40.0

    def test_backpressure_releases_after_stall(self):
        """Pause-mode: stalling to the drain time releases the latch."""
        trace = make_trace()
        engine = ServiceEngine(base_config(), trace)
        controller = AdmissionController(
            AdmissionConfig(
                ptb_high_watermark=1,
                ptb_low_watermark=0,
                backpressure_mode="pause",
            )
        )
        saw_latch = False
        for packet in trace.packets:
            device = engine.device_for_sid(packet.sid)
            if controller.check_backpressure(
                device, engine.ptb_occupancy(device)
            ):
                saw_latch = True
                engine.stall_until_drained(
                    device, controller.config.low_watermark()
                )
                # After the stall the PTB has drained to the target, so
                # the latch must release on the next check.
                occupancy = engine.ptb_occupancy(device)
                assert occupancy <= controller.config.low_watermark()
                assert controller.check_backpressure(device, occupancy) is False
            engine.submit(packet)
        assert saw_latch  # base config (PTB=1) must trip the watermark
        assert engine.processed == len(trace.packets)


class TestServerAdmission:
    def test_zero_rate_tenant_over_the_wire(self):
        async def run():
            trace = make_trace()
            victim = trace.packets[0].sid
            engine = ServiceEngine(hypertrio_config(), trace)
            server = ServiceServer(
                engine,
                admission=AdmissionConfig(tenant_rates={victim: 0.0}),
            )
            await server.start()
            client = ServiceClient("127.0.0.1", server.port)
            await client.connect()
            outcomes = await client.replay(trace.packets)
            await client.close()
            await server.shutdown()
            return victim, outcomes

        victim, outcomes = asyncio.run(run())
        for reply in outcomes:
            if reply.get("type") == protocol.ERROR:
                assert reply["code"] == protocol.E_RATE_LIMITED
            else:
                assert reply["sid"] != victim
        errors = [r for r in outcomes if r.get("type") == protocol.ERROR]
        results = [r for r in outcomes if r.get("type") == protocol.RESULT]
        assert errors and results
        assert len(errors) + len(results) == len(outcomes)

    def test_shed_mode_backpressure_over_the_wire(self):
        async def run():
            trace = make_trace()
            engine = ServiceEngine(base_config(), trace)
            server = ServiceServer(
                engine,
                admission=AdmissionConfig(
                    ptb_high_watermark=1, ptb_low_watermark=0,
                    backpressure_mode="shed",
                ),
            )
            await server.start()
            client = ServiceClient("127.0.0.1", server.port)
            await client.connect()
            outcomes = await client.replay(trace.packets)
            stats = await client.stats()
            await client.close()
            await server.shutdown()
            return outcomes, stats

        outcomes, stats = asyncio.run(run())
        sheds = [
            r for r in outcomes
            if r.get("type") == protocol.ERROR
            and r["code"] == protocol.E_BACKPRESSURE
        ]
        assert sheds  # PTB=1 with watermark 1 must shed under load
        assert len(outcomes) == 80
        total_shed = sum(
            tenant["backpressure_shed"]
            for tenant in stats["admission"].values()
        )
        assert total_shed == len(sheds)

    def test_disconnect_mid_stream_leaks_no_engine_state(self):
        """Requests queued by a dead client are discarded at dispatch."""

        class _DeadWriter:
            def write(self, data):
                pass

            async def drain(self):
                pass

            def close(self):
                pass

        async def run():
            trace = make_trace()
            engine = ServiceEngine(
                hypertrio_config(), trace,
            )
            server = ServiceServer(
                engine, admission=AdmissionConfig(max_queue_depth=16)
            )
            await server.start()
            conn = _Connection(_DeadWriter(), name="dead-client")
            queued = trace.packets[:5]
            for seq, packet in enumerate(queued):
                assert server.admission.acquire(packet.sid, 0.0) is None
                server._queue.put_nowait((conn, seq, packet, None))
            # The client dies before the dispatcher reaches its requests.
            conn.closed = True
            await server._queue.join()
            processed = engine.processed
            in_flight = {
                packet.sid: server.admission.in_flight(packet.sid)
                for packet in queued
            }
            await server.shutdown()
            return processed, in_flight

        processed, in_flight = asyncio.run(run())
        assert processed == 0  # the engine never saw the dead requests
        # Every admission slot was returned, for every affected tenant.
        assert all(count == 0 for count in in_flight.values())
