"""Tests for result comparison and trace validation."""

import dataclasses

import pytest

from repro.analysis.compare import compare_results, comparison_table
from repro.core.config import base_config, hypertrio_config
from repro.sim.simulator import HyperSimulator
from repro.trace.constructor import construct_trace
from repro.trace.records import PacketRecord
from repro.trace.tenant import MEDIASTREAM
from repro.trace.validate import ValidationReport, validate_trace


def _trace(packets=600, tenants=8):
    return construct_trace(
        MEDIASTREAM, num_tenants=tenants, packets_per_tenant=100_000,
        max_packets=packets,
    )


def _pair():
    base = HyperSimulator(base_config(), _trace()).run()
    hyper = HyperSimulator(hypertrio_config(), _trace()).run()
    return base, hyper


class TestCompareResults:
    def test_hypertrio_vs_base(self):
        base, hyper = _pair()
        comparison = compare_results(base, hyper)
        assert comparison.candidate_wins
        assert comparison.bandwidth_speedup > 1.0
        assert comparison.utilization_delta > 0.0
        assert comparison.drop_delta <= 0

    def test_self_comparison_is_neutral(self):
        base, _ = _pair()
        comparison = compare_results(base, base)
        assert comparison.bandwidth_speedup == pytest.approx(1.0)
        assert comparison.utilization_delta == pytest.approx(0.0)
        assert all(
            delta == pytest.approx(0.0)
            for delta in comparison.hit_rate_deltas.values()
        )

    def test_mismatched_traces_rejected(self):
        base = HyperSimulator(base_config(), _trace(tenants=4)).run()
        other = HyperSimulator(base_config(), _trace(tenants=8)).run()
        with pytest.raises(ValueError):
            compare_results(base, other)

    def test_comparison_table_renders(self):
        base, hyper = _pair()
        table = comparison_table(compare_results(base, hyper))
        text = table.render()
        assert "bandwidth speedup" in text
        assert "devtlb hit-rate delta" in text


class TestValidateTrace:
    def test_constructed_trace_is_valid(self):
        report = validate_trace(_trace())
        assert report.ok
        assert report.packets_checked == 600
        report.raise_if_invalid()  # must not raise

    def test_remap_trace_is_valid(self):
        profile = dataclasses.replace(
            MEDIASTREAM, remap_on_advance=True, jump_probability=0.0
        )
        trace = construct_trace(
            profile, num_tenants=2, packets_per_tenant=2000, max_packets=900
        )
        assert validate_trace(trace).ok

    def test_unknown_sid_detected(self):
        trace = _trace(packets=50)
        trace.packets[10] = PacketRecord(sid=999, giovas=(1, 2, 3))
        report = validate_trace(trace)
        assert not report.ok
        assert any("unknown SID" in error for error in report.errors)

    def test_bad_size_detected(self):
        trace = _trace(packets=50)
        good = trace.packets[0]
        trace.packets[0] = PacketRecord(
            sid=good.sid, giovas=good.giovas, size_bytes=20
        )
        report = validate_trace(trace)
        assert any("implausible size" in error for error in report.errors)

    def test_faulting_giova_detected(self):
        trace = _trace(packets=50)
        good = trace.packets[0]
        trace.packets[0] = PacketRecord(
            sid=good.sid, giovas=(0xDEAD_0000, good.giovas[1], good.giovas[2])
        )
        report = validate_trace(trace)
        assert any("faults" in error for error in report.errors)

    def test_stats_mismatch_detected(self):
        trace = _trace(packets=50)
        trace.packets.append(trace.packets[0])  # stats now stale
        report = validate_trace(trace)
        assert any("statistics" in error for error in report.errors)

    def test_raise_if_invalid(self):
        trace = _trace(packets=50)
        trace.packets[0] = PacketRecord(sid=999, giovas=(1, 2, 3))
        with pytest.raises(ValueError):
            validate_trace(trace).raise_if_invalid()

    def test_sampling_skips_walks(self):
        trace = _trace(packets=51)
        good = trace.packets[1]
        # A faulting gIOVA at an unsampled index escapes the walk check...
        trace.packets[1] = PacketRecord(
            sid=good.sid, giovas=(0xDEAD_0000, good.giovas[1], good.giovas[2])
        )
        sampled = validate_trace(trace, sample_stride=50)
        assert not any("faults" in error for error in sampled.errors)

    def test_error_cap(self):
        trace = _trace(packets=50)
        for index in range(50):
            trace.packets[index] = PacketRecord(sid=999, giovas=(1, 2, 3))
        report = validate_trace(trace, max_errors=5)
        assert len(report.errors) == 5

    def test_invalid_stride(self):
        with pytest.raises(ValueError):
            validate_trace(_trace(packets=10), sample_stride=0)

    def test_report_defaults(self):
        report = ValidationReport(packets_checked=0)
        assert report.ok
