"""Tests for the translation service: protocol, parity, warm restart.

The asyncio pieces run under ``asyncio.run`` inside synchronous tests
(the environment has no pytest-asyncio).
"""

import asyncio
import json

import pytest

from repro.core.config import base_config, hypertrio_config
from repro.runner.serialize import result_from_dict, result_to_dict
from repro.service import protocol
from repro.service.client import ServiceClient
from repro.service.engine import (
    ServiceEngine,
    UnknownTenantError,
    load_service_checkpoint,
)
from repro.service.server import ServiceServer
from repro.sim.checkpoint import CheckpointError
from repro.sim.simulator import HyperSimulator
from repro.trace.constructor import construct_trace
from repro.trace.records import PacketRecord
from repro.trace.tenant import profile_by_name

TENANTS = 8
PACKETS = 120


def make_trace(num_tenants=TENANTS, packets=PACKETS, benchmark="mediastream"):
    """A fresh trace per call: traces must never be shared between sims."""
    return construct_trace(
        profile_by_name(benchmark),
        num_tenants=num_tenants,
        packets_per_tenant=200_000,
        max_packets=packets,
    )


def offline_result(config, **trace_kwargs):
    return HyperSimulator(config, make_trace(**trace_kwargs)).run(
        warmup_packets=0
    )


class TestProtocol:
    def test_encode_decode_round_trip(self):
        message = {"type": protocol.TRANSLATE, "seq": 3, "giovas": [1, 2, 3]}
        assert protocol.decode(protocol.encode(message)) == message

    def test_decode_rejects_non_json(self):
        with pytest.raises(protocol.ProtocolError):
            protocol.decode(b"not json\n")

    def test_decode_rejects_non_object(self):
        with pytest.raises(protocol.ProtocolError):
            protocol.decode(b"[1, 2]\n")

    def test_decode_requires_type(self):
        with pytest.raises(protocol.ProtocolError):
            protocol.decode(b'{"seq": 1}\n')

    def test_parse_translate_requires_sid_when_unbound(self):
        message = {"type": protocol.TRANSLATE, "seq": 0, "giovas": [1, 2, 3]}
        with pytest.raises(protocol.ProtocolError):
            protocol.parse_translate(message, None)

    def test_parse_translate_validates_giovas(self):
        message = {
            "type": protocol.TRANSLATE, "seq": 0, "sid": 0, "giovas": [1, 2],
        }
        with pytest.raises(protocol.ProtocolError):
            protocol.parse_translate(message, None)

    def test_outcome_wire_round_trip(self):
        outcome = protocol.PacketOutcome(
            sid=3, accepted=False, drop_causes={"ptb_overflow": 1},
            retried=2, arrival_ns=10.0, completion_ns=20.0,
            translations=3, devtlb_hits=1, devtlb_misses=2, latency_ns=7.5,
        )
        wire = outcome.to_wire(seq=9)
        assert wire["seq"] == 9
        assert wire["status"] == "dropped"
        restored = protocol.PacketOutcome.from_wire(wire)
        assert restored == outcome


class TestServiceEngineParity:
    @pytest.mark.parametrize("factory", [base_config, hypertrio_config])
    def test_submit_stream_matches_offline(self, factory):
        config = factory()
        offline = offline_result(config)
        engine = ServiceEngine(config, make_trace())
        for packet in make_trace().packets:
            engine.submit(packet)
        assert engine.flush() == offline

    def test_base_config_exercises_drops(self):
        # The parity above is only meaningful if the retry path runs.
        result = offline_result(base_config())
        assert result.packets.dropped > 0

    def test_flush_is_idempotent_and_terminal(self):
        engine = ServiceEngine(hypertrio_config(), make_trace())
        packets = make_trace().packets
        for packet in packets:
            engine.submit(packet)
        first = engine.flush()
        assert engine.flush() is first
        with pytest.raises(RuntimeError):
            engine.submit(packets[0])

    def test_peek_result_does_not_end_stream(self):
        engine = ServiceEngine(hypertrio_config(), make_trace())
        packets = make_trace().packets
        for packet in packets[:50]:
            engine.submit(packet)
        mid = engine.peek_result()
        assert mid.packets.arrived == 50
        for packet in packets[50:]:
            engine.submit(packet)
        assert engine.processed == len(packets)

    def test_unknown_sid_rejected(self):
        engine = ServiceEngine(hypertrio_config(), make_trace())
        bad = PacketRecord(sid=10_000, giovas=(1, 2, 3))
        with pytest.raises(UnknownTenantError):
            engine.submit(bad)
        assert engine.processed == 0

    def test_checkpoint_round_trip_matches_offline(self, tmp_path):
        config = hypertrio_config()
        offline = offline_result(config)
        engine = ServiceEngine(config, make_trace())
        packets = make_trace().packets
        half = len(packets) // 2
        for packet in packets[:half]:
            engine.submit(packet)
        path = tmp_path / "svc.ckpt"
        engine.save_checkpoint(path, extra_state={"marker": 42})

        restored, state = load_service_checkpoint(path, expect_config=config)
        assert state["marker"] == 42
        assert restored.processed == half
        for packet in packets[half:]:
            restored.submit(packet)
        assert restored.flush() == offline

    def test_checkpoint_config_mismatch_detected(self, tmp_path):
        engine = ServiceEngine(hypertrio_config(), make_trace())
        path = tmp_path / "svc.ckpt"
        engine.save_checkpoint(path)
        with pytest.raises(CheckpointError):
            load_service_checkpoint(path, expect_config=base_config())

    def test_analytic_checkpoint_refused(self, tmp_path):
        path = tmp_path / "analytic.ckpt"
        simulator = HyperSimulator(hypertrio_config(), make_trace())
        simulator.run(
            warmup_packets=0, checkpoint_every=50, checkpoint_path=path
        )
        with pytest.raises(CheckpointError):
            load_service_checkpoint(path)


class TestServerEndToEnd:
    def test_replay_and_flush_match_offline_exactly(self):
        config = hypertrio_config()
        offline = offline_result(config)

        async def run():
            engine = ServiceEngine(config, make_trace())
            server = ServiceServer(engine)
            await server.start()
            client = ServiceClient("127.0.0.1", server.port)
            await client.connect()
            outcomes = await client.replay(make_trace().packets)
            flush = await client.flush()
            await client.close()
            await server.shutdown()
            return outcomes, flush

        outcomes, flush = asyncio.run(run())
        assert len(outcomes) == PACKETS
        assert all(o["type"] == protocol.RESULT for o in outcomes)
        wire = flush["result"]
        assert result_from_dict(wire) == offline
        # Byte identity through the serializer (the raw wire dict differs
        # only by JSON's tuple->list coercion).
        assert json.dumps(result_to_dict(offline)) == json.dumps(
            result_to_dict(result_from_dict(wire))
        )

    def test_batched_dispatch_engages_and_matches_offline(self):
        # A windowed replay backlogs the dispatcher queue, so passes pick
        # up multiple requests and take the whole-batch translate path;
        # the flushed result must still be byte-identical to offline.
        config = hypertrio_config()
        offline = offline_result(config)

        async def run():
            engine = ServiceEngine(config, make_trace())
            server = ServiceServer(engine)
            await server.start()
            client = ServiceClient("127.0.0.1", server.port)
            await client.connect()
            await client.replay(make_trace().packets, window=64)
            flush = await client.flush()
            await client.close()
            await server.shutdown()
            return server, flush

        server, flush = asyncio.run(run())
        assert server.batched_requests > 0
        assert result_from_dict(flush["result"]) == offline

    def test_batch_window_one_restores_per_packet_dispatch(self):
        config = hypertrio_config()
        offline = offline_result(config)

        async def run():
            engine = ServiceEngine(config, make_trace())
            server = ServiceServer(engine, batch_window=1)
            await server.start()
            client = ServiceClient("127.0.0.1", server.port)
            await client.connect()
            await client.replay(make_trace().packets, window=64)
            flush = await client.flush()
            await client.close()
            await server.shutdown()
            return server, flush

        server, flush = asyncio.run(run())
        assert server.batched_requests == 0
        assert result_from_dict(flush["result"]) == offline

    def test_stats_reports_live_per_sid_metrics(self):
        from repro.obs import Observability

        async def run():
            engine = ServiceEngine(
                hypertrio_config(), make_trace(),
                observability=Observability.metrics_only(),
            )
            server = ServiceServer(engine)
            await server.start()
            client = ServiceClient("127.0.0.1", server.port)
            await client.connect()
            await client.replay(make_trace().packets)
            stats = await client.stats()
            await client.close()
            await server.shutdown()
            return stats

        stats = asyncio.run(run())
        assert stats["schema"] == protocol.PROTOCOL_SCHEMA
        assert stats["processed"] == PACKETS
        assert stats["packets"]["arrived"] == PACKETS
        per_sid = stats["per_sid"]
        assert len(per_sid) == TENANTS
        for summary in per_sid.values():
            assert summary["count"] > 0
            assert summary["p99_ns"] >= summary["p50_ns"]
            assert summary["devtlb_hits"] + summary["devtlb_misses"] > 0

    def test_hello_rejects_unknown_sid(self):
        async def run():
            engine = ServiceEngine(hypertrio_config(), make_trace())
            server = ServiceServer(engine)
            await server.start()
            client = ServiceClient("127.0.0.1", server.port, sid=999)
            try:
                with pytest.raises(Exception):
                    await client.connect()
            finally:
                await client.close()
                await server.shutdown()

        asyncio.run(run())

    def test_graceful_shutdown_flushes_checkpoint(self, tmp_path):
        path = tmp_path / "svc.ckpt"

        async def run():
            engine = ServiceEngine(hypertrio_config(), make_trace())
            server = ServiceServer(engine, checkpoint_path=path)
            await server.start()
            client = ServiceClient("127.0.0.1", server.port)
            await client.connect()
            await client.replay(make_trace().packets[:40])
            saved = await server.shutdown()
            await client.close()
            return saved

        saved = asyncio.run(run())
        assert saved == str(path)
        engine, _ = load_service_checkpoint(path)
        assert engine.processed == 40

    def test_warm_restart_resumes_to_offline_parity(self, tmp_path):
        """SIGTERM-style restart mid-stream: the combined run is exact."""
        config = hypertrio_config()
        offline = offline_result(config)
        path = tmp_path / "svc.ckpt"
        packets = make_trace().packets
        half = len(packets) // 2

        async def first_half():
            engine = ServiceEngine(config, make_trace())
            server = ServiceServer(engine, checkpoint_path=path)
            await server.start()
            client = ServiceClient("127.0.0.1", server.port)
            await client.connect()
            await client.replay(packets[:half])
            await server.shutdown()  # what request_shutdown() triggers
            await client.close()

        async def second_half():
            engine, state = load_service_checkpoint(path, expect_config=config)
            server = ServiceServer(engine)
            await server.start()
            client = ServiceClient("127.0.0.1", server.port)
            await client.connect()
            await client.replay(packets[half:])
            flush = await client.flush()
            await client.close()
            await server.shutdown()
            return flush

        asyncio.run(first_half())
        flush = asyncio.run(second_half())
        assert flush["packets"] == len(packets)
        assert result_from_dict(flush["result"]) == offline


class TestSweepRegistration:
    def test_service_saturation_registered(self):
        from repro.analysis.experiments import ALL_EXPERIMENTS

        assert "service_saturation" in ALL_EXPERIMENTS

    def test_driver_produces_full_matrix(self):
        from repro.analysis.scale import SMOKE
        from repro.analysis.service_saturation import service_saturation

        table = service_saturation(SMOKE)
        # smoke: 2 client counts x 1 tenant count
        assert len(table.rows) == 2
        for row in table.rows:
            requests = row[2]
            assert requests == 400
