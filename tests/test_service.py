"""Tests for the translation service: protocol, parity, warm restart.

The asyncio pieces run under ``asyncio.run`` inside synchronous tests
(the environment has no pytest-asyncio).
"""

import asyncio
import json

import pytest

from repro.core.config import base_config, hypertrio_config
from repro.runner.serialize import result_from_dict, result_to_dict
from repro.service import protocol
from repro.service.client import ServiceClient
from repro.service.engine import (
    ServiceEngine,
    UnknownTenantError,
    load_service_checkpoint,
)
from repro.service.server import ConnectionPolicy, ServiceServer
from repro.sim.checkpoint import CheckpointError
from repro.sim.simulator import HyperSimulator
from repro.trace.constructor import construct_trace
from repro.trace.records import PacketRecord
from repro.trace.tenant import profile_by_name

TENANTS = 8
PACKETS = 120


def make_trace(num_tenants=TENANTS, packets=PACKETS, benchmark="mediastream"):
    """A fresh trace per call: traces must never be shared between sims."""
    return construct_trace(
        profile_by_name(benchmark),
        num_tenants=num_tenants,
        packets_per_tenant=200_000,
        max_packets=packets,
    )


def offline_result(config, **trace_kwargs):
    return HyperSimulator(config, make_trace(**trace_kwargs)).run(
        warmup_packets=0
    )


class TestProtocol:
    def test_encode_decode_round_trip(self):
        message = {"type": protocol.TRANSLATE, "seq": 3, "giovas": [1, 2, 3]}
        assert protocol.decode(protocol.encode(message)) == message

    def test_decode_rejects_non_json(self):
        with pytest.raises(protocol.ProtocolError):
            protocol.decode(b"not json\n")

    def test_decode_rejects_non_object(self):
        with pytest.raises(protocol.ProtocolError):
            protocol.decode(b"[1, 2]\n")

    def test_decode_requires_type(self):
        with pytest.raises(protocol.ProtocolError):
            protocol.decode(b'{"seq": 1}\n')

    def test_parse_translate_requires_sid_when_unbound(self):
        message = {"type": protocol.TRANSLATE, "seq": 0, "giovas": [1, 2, 3]}
        with pytest.raises(protocol.ProtocolError):
            protocol.parse_translate(message, None)

    def test_parse_translate_validates_giovas(self):
        message = {
            "type": protocol.TRANSLATE, "seq": 0, "sid": 0, "giovas": [1, 2],
        }
        with pytest.raises(protocol.ProtocolError):
            protocol.parse_translate(message, None)

    def test_outcome_wire_round_trip(self):
        outcome = protocol.PacketOutcome(
            sid=3, accepted=False, drop_causes={"ptb_overflow": 1},
            retried=2, arrival_ns=10.0, completion_ns=20.0,
            translations=3, devtlb_hits=1, devtlb_misses=2, latency_ns=7.5,
        )
        wire = outcome.to_wire(seq=9)
        assert wire["seq"] == 9
        assert wire["status"] == "dropped"
        restored = protocol.PacketOutcome.from_wire(wire)
        assert restored == outcome


class TestServiceEngineParity:
    @pytest.mark.parametrize("factory", [base_config, hypertrio_config])
    def test_submit_stream_matches_offline(self, factory):
        config = factory()
        offline = offline_result(config)
        engine = ServiceEngine(config, make_trace())
        for packet in make_trace().packets:
            engine.submit(packet)
        assert engine.flush() == offline

    def test_base_config_exercises_drops(self):
        # The parity above is only meaningful if the retry path runs.
        result = offline_result(base_config())
        assert result.packets.dropped > 0

    def test_flush_is_idempotent_and_terminal(self):
        engine = ServiceEngine(hypertrio_config(), make_trace())
        packets = make_trace().packets
        for packet in packets:
            engine.submit(packet)
        first = engine.flush()
        assert engine.flush() is first
        with pytest.raises(RuntimeError):
            engine.submit(packets[0])

    def test_peek_result_does_not_end_stream(self):
        engine = ServiceEngine(hypertrio_config(), make_trace())
        packets = make_trace().packets
        for packet in packets[:50]:
            engine.submit(packet)
        mid = engine.peek_result()
        assert mid.packets.arrived == 50
        for packet in packets[50:]:
            engine.submit(packet)
        assert engine.processed == len(packets)

    def test_unknown_sid_rejected(self):
        engine = ServiceEngine(hypertrio_config(), make_trace())
        bad = PacketRecord(sid=10_000, giovas=(1, 2, 3))
        with pytest.raises(UnknownTenantError):
            engine.submit(bad)
        assert engine.processed == 0

    def test_checkpoint_round_trip_matches_offline(self, tmp_path):
        config = hypertrio_config()
        offline = offline_result(config)
        engine = ServiceEngine(config, make_trace())
        packets = make_trace().packets
        half = len(packets) // 2
        for packet in packets[:half]:
            engine.submit(packet)
        path = tmp_path / "svc.ckpt"
        engine.save_checkpoint(path, extra_state={"marker": 42})

        restored, state = load_service_checkpoint(path, expect_config=config)
        assert state["marker"] == 42
        assert restored.processed == half
        for packet in packets[half:]:
            restored.submit(packet)
        assert restored.flush() == offline

    def test_checkpoint_config_mismatch_detected(self, tmp_path):
        engine = ServiceEngine(hypertrio_config(), make_trace())
        path = tmp_path / "svc.ckpt"
        engine.save_checkpoint(path)
        with pytest.raises(CheckpointError):
            load_service_checkpoint(path, expect_config=base_config())

    def test_analytic_checkpoint_refused(self, tmp_path):
        path = tmp_path / "analytic.ckpt"
        simulator = HyperSimulator(hypertrio_config(), make_trace())
        simulator.run(
            warmup_packets=0, checkpoint_every=50, checkpoint_path=path
        )
        with pytest.raises(CheckpointError):
            load_service_checkpoint(path)


class TestServerEndToEnd:
    def test_replay_and_flush_match_offline_exactly(self):
        config = hypertrio_config()
        offline = offline_result(config)

        async def run():
            engine = ServiceEngine(config, make_trace())
            server = ServiceServer(engine)
            await server.start()
            client = ServiceClient("127.0.0.1", server.port)
            await client.connect()
            outcomes = await client.replay(make_trace().packets)
            flush = await client.flush()
            await client.close()
            await server.shutdown()
            return outcomes, flush

        outcomes, flush = asyncio.run(run())
        assert len(outcomes) == PACKETS
        assert all(o["type"] == protocol.RESULT for o in outcomes)
        wire = flush["result"]
        assert result_from_dict(wire) == offline
        # Byte identity through the serializer (the raw wire dict differs
        # only by JSON's tuple->list coercion).
        assert json.dumps(result_to_dict(offline)) == json.dumps(
            result_to_dict(result_from_dict(wire))
        )

    def test_batched_dispatch_engages_and_matches_offline(self):
        # A windowed replay backlogs the dispatcher queue, so passes pick
        # up multiple requests and take the whole-batch translate path;
        # the flushed result must still be byte-identical to offline.
        config = hypertrio_config()
        offline = offline_result(config)

        async def run():
            engine = ServiceEngine(config, make_trace())
            server = ServiceServer(engine)
            await server.start()
            client = ServiceClient("127.0.0.1", server.port)
            await client.connect()
            await client.replay(make_trace().packets, window=64)
            flush = await client.flush()
            await client.close()
            await server.shutdown()
            return server, flush

        server, flush = asyncio.run(run())
        assert server.batched_requests > 0
        assert result_from_dict(flush["result"]) == offline

    def test_batch_window_one_restores_per_packet_dispatch(self):
        config = hypertrio_config()
        offline = offline_result(config)

        async def run():
            engine = ServiceEngine(config, make_trace())
            server = ServiceServer(engine, batch_window=1)
            await server.start()
            client = ServiceClient("127.0.0.1", server.port)
            await client.connect()
            await client.replay(make_trace().packets, window=64)
            flush = await client.flush()
            await client.close()
            await server.shutdown()
            return server, flush

        server, flush = asyncio.run(run())
        assert server.batched_requests == 0
        assert result_from_dict(flush["result"]) == offline

    def test_stats_reports_live_per_sid_metrics(self):
        from repro.obs import Observability

        async def run():
            engine = ServiceEngine(
                hypertrio_config(), make_trace(),
                observability=Observability.metrics_only(),
            )
            server = ServiceServer(engine)
            await server.start()
            client = ServiceClient("127.0.0.1", server.port)
            await client.connect()
            await client.replay(make_trace().packets)
            stats = await client.stats()
            await client.close()
            await server.shutdown()
            return stats

        stats = asyncio.run(run())
        assert stats["schema"] == protocol.PROTOCOL_SCHEMA
        assert stats["processed"] == PACKETS
        assert stats["packets"]["arrived"] == PACKETS
        per_sid = stats["per_sid"]
        assert len(per_sid) == TENANTS
        for summary in per_sid.values():
            assert summary["count"] > 0
            assert summary["p99_ns"] >= summary["p50_ns"]
            assert summary["devtlb_hits"] + summary["devtlb_misses"] > 0

    def test_hello_rejects_unknown_sid(self):
        async def run():
            engine = ServiceEngine(hypertrio_config(), make_trace())
            server = ServiceServer(engine)
            await server.start()
            client = ServiceClient("127.0.0.1", server.port, sid=999)
            try:
                with pytest.raises(Exception):
                    await client.connect()
            finally:
                await client.close()
                await server.shutdown()

        asyncio.run(run())

    def test_graceful_shutdown_flushes_checkpoint(self, tmp_path):
        path = tmp_path / "svc.ckpt"

        async def run():
            engine = ServiceEngine(hypertrio_config(), make_trace())
            server = ServiceServer(engine, checkpoint_path=path)
            await server.start()
            client = ServiceClient("127.0.0.1", server.port)
            await client.connect()
            await client.replay(make_trace().packets[:40])
            saved = await server.shutdown()
            await client.close()
            return saved

        saved = asyncio.run(run())
        assert saved == str(path)
        engine, _ = load_service_checkpoint(path)
        assert engine.processed == 40

    def test_warm_restart_resumes_to_offline_parity(self, tmp_path):
        """SIGTERM-style restart mid-stream: the combined run is exact."""
        config = hypertrio_config()
        offline = offline_result(config)
        path = tmp_path / "svc.ckpt"
        packets = make_trace().packets
        half = len(packets) // 2

        async def first_half():
            engine = ServiceEngine(config, make_trace())
            server = ServiceServer(engine, checkpoint_path=path)
            await server.start()
            client = ServiceClient("127.0.0.1", server.port)
            await client.connect()
            await client.replay(packets[:half])
            await server.shutdown()  # what request_shutdown() triggers
            await client.close()

        async def second_half():
            engine, state = load_service_checkpoint(path, expect_config=config)
            server = ServiceServer(engine)
            await server.start()
            client = ServiceClient("127.0.0.1", server.port)
            await client.connect()
            await client.replay(packets[half:])
            flush = await client.flush()
            await client.close()
            await server.shutdown()
            return flush

        asyncio.run(first_half())
        flush = asyncio.run(second_half())
        assert flush["packets"] == len(packets)
        assert result_from_dict(flush["result"]) == offline


async def raw_connect(port):
    """A bare protocol-level connection (no client library)."""
    return await asyncio.open_connection("127.0.0.1", port)


async def raw_request(reader, writer, message):
    writer.write(protocol.encode(message))
    await writer.drain()
    return protocol.decode(await reader.readline())


async def with_server(body, policy=None, packets=PACKETS):
    """Run ``body(server)`` against a started server; always cleans up."""
    engine = ServiceEngine(hypertrio_config(), make_trace(packets=packets))
    server = ServiceServer(engine, policy=policy)
    await server.start()
    try:
        return await body(server), server
    finally:
        await server.shutdown()


class TestConnectionSupervision:
    def test_malformed_frame_answered_and_connection_survives(self):
        async def body(server):
            reader, writer = await raw_connect(server.port)
            try:
                writer.write(b"this is not json\n")
                await writer.drain()
                error = protocol.decode(await reader.readline())
                assert error["type"] == protocol.ERROR
                assert error["code"] == protocol.E_BAD_REQUEST
                # The connection is still usable afterwards.
                hello = await raw_request(
                    reader, writer, {"type": protocol.HELLO}
                )
                assert hello["type"] == protocol.HELLO_OK
                assert "conn_supervision" in hello["features"]
                assert "session" in hello["features"]
            finally:
                writer.close()

        asyncio.run(with_server(body))

    def test_oversized_frame_rejected_with_typed_error(self):
        policy = ConnectionPolicy(max_frame_bytes=1024)

        async def body(server):
            reader, writer = await raw_connect(server.port)
            try:
                writer.write(b"x" * 5000)  # no newline needed to trip it
                await writer.drain()
                error = protocol.decode(await reader.readline())
                assert error["code"] == protocol.E_FRAME_TOO_LARGE
                assert await reader.readline() == b""  # server closed
            finally:
                writer.close()
            assert server.conn_counters["frame_too_large"] == 1

        asyncio.run(with_server(body, policy=policy))

    def test_half_open_connection_hits_frame_deadline(self):
        policy = ConnectionPolicy(frame_deadline_s=0.1)

        async def body(server):
            reader, writer = await raw_connect(server.port)
            try:
                writer.write(b'{"type": "hel')  # a frame that never ends
                await writer.drain()
                error = protocol.decode(await reader.readline())
                assert error["code"] == protocol.E_FRAME_TIMEOUT
                assert await reader.readline() == b""
            finally:
                writer.close()
            assert server.conn_counters["frame_timeout"] == 1

        asyncio.run(with_server(body, policy=policy))

    def test_idle_connection_reaped(self):
        policy = ConnectionPolicy(idle_timeout_s=0.05)

        async def body(server):
            reader, writer = await raw_connect(server.port)
            try:
                error = protocol.decode(await reader.readline())
                assert error["code"] == protocol.E_IDLE_TIMEOUT
                assert await reader.readline() == b""
            finally:
                writer.close()
            assert server.conn_counters["idle_timeout"] == 1

        asyncio.run(with_server(body, policy=policy))

    def test_mid_handshake_disconnect_leaves_server_clean(self):
        async def body(server):
            _, writer = await raw_connect(server.port)
            writer.write(b'{"type": "hello"')  # torn hello, then gone
            await writer.drain()
            writer.close()
            # The server treats the torn trailing frame as EOF and a
            # fresh client is unaffected.
            for _ in range(100):
                await asyncio.sleep(0.01)
                if not server._connections:
                    break
            assert not server._connections
            client = ServiceClient("127.0.0.1", server.port)
            await client.connect()
            outcomes = await client.replay(make_trace().packets)
            assert len(outcomes) == PACKETS
            await client.close()

        asyncio.run(with_server(body))

    def test_inflight_cap_refuses_with_retryable_error(self):
        policy = ConnectionPolicy(max_inflight=0)

        async def body(server):
            reader, writer = await raw_connect(server.port)
            try:
                hello = await raw_request(
                    reader, writer, {"type": protocol.HELLO}
                )
                assert hello["type"] == protocol.HELLO_OK
                packet = make_trace().packets[0]
                error = await raw_request(
                    reader,
                    writer,
                    {
                        "type": protocol.TRANSLATE,
                        "seq": 0,
                        "sid": packet.sid,
                        "giovas": list(packet.giovas),
                        "size": packet.size_bytes,
                    },
                )
                assert error["code"] == protocol.E_TOO_MANY_INFLIGHT
                assert error["code"] in protocol.RETRYABLE_CODES
            finally:
                writer.close()
            assert server.conn_counters["too_many_inflight"] == 1

        asyncio.run(with_server(body, policy=policy))

    def test_slow_peer_is_evicted_not_awaited(self):
        # A zero write-buffer cap marks every touched connection slow the
        # moment the dispatcher replies to it — the eviction path runs
        # without needing to actually wedge a socket.
        policy = ConnectionPolicy(max_write_buffer=-1, evict_grace_s=0.05)

        async def body(server):
            reader, writer = await raw_connect(server.port)
            try:
                await raw_request(reader, writer, {"type": protocol.HELLO})
                packet = make_trace().packets[0]
                writer.write(
                    protocol.encode(
                        {
                            "type": protocol.TRANSLATE,
                            "seq": 0,
                            "sid": packet.sid,
                            "giovas": list(packet.giovas),
                            "size": packet.size_bytes,
                        }
                    )
                )
                await writer.drain()
                replies = []
                while True:
                    line = await asyncio.wait_for(reader.readline(), 5.0)
                    if not line:
                        break
                    replies.append(protocol.decode(line))
                kinds = [
                    (r.get("type"), r.get("code")) for r in replies
                ]
                # The queued result still lands, then the eviction notice.
                assert (protocol.RESULT, None) in kinds
                assert (protocol.ERROR, protocol.E_SLOW_PEER) in kinds
            finally:
                writer.close()
            assert server.conn_counters["evicted_slow"] >= 1

        asyncio.run(with_server(body, policy=policy))

    def test_conn_counters_exported_via_stats_and_prom(self):
        async def body(server):
            client = ServiceClient("127.0.0.1", server.port)
            await client.connect()
            await client.replay(make_trace().packets[:10])
            stats = await client.stats()
            prom = await client.stats(fmt="prom")
            await client.close()
            return stats, prom

        (stats, prom), server = asyncio.run(with_server(body))
        conn = stats["conn"]
        assert conn["opened"] >= 1
        assert conn["open"] >= 1
        assert set(server.conn_counters) <= set(conn)
        text = prom["text"]
        assert "conn_opened" in text
        assert "conn_open " in text
        assert "conn_evicted_slow" in text


class TestSessions:
    @staticmethod
    def translate_msg(packet, seq, **extra):
        message = {
            "type": protocol.TRANSLATE,
            "seq": seq,
            "sid": packet.sid,
            "giovas": list(packet.giovas),
            "size": packet.size_bytes,
        }
        if packet.invalidations:
            message["inv"] = list(packet.invalidations)
        message.update(extra)
        return message

    def test_duplicate_seq_served_from_cache_not_retranslated(self):
        async def body(server):
            packets = make_trace().packets
            reader, writer = await raw_connect(server.port)
            try:
                hello = await raw_request(
                    reader, writer,
                    {"type": protocol.HELLO, "session": "s-dup"},
                )
                assert hello["session"] == "s-dup"
                first = await raw_request(
                    reader, writer, self.translate_msg(packets[0], 0)
                )
                assert first["type"] == protocol.RESULT
                assert server.engine.processed == 1
                again = await raw_request(
                    reader, writer, self.translate_msg(packets[0], 0)
                )
                assert again == first  # byte-identical cached reply
                assert server.engine.processed == 1  # never re-ran
            finally:
                writer.close()
            assert server.conn_counters["resends_served"] == 1

        asyncio.run(with_server(body))

    def test_out_of_order_arrivals_dispatch_in_seq_order(self):
        async def body(server):
            packets = make_trace().packets
            reader, writer = await raw_connect(server.port)
            try:
                await raw_request(
                    reader, writer,
                    {"type": protocol.HELLO, "session": "s-ooo"},
                )
                # seq 1 arrives first: held, not translated.
                writer.write(
                    protocol.encode(self.translate_msg(packets[1], 1))
                )
                writer.write(
                    protocol.encode(self.translate_msg(packets[0], 0))
                )
                await writer.drain()
                replies = [
                    protocol.decode(await reader.readline())
                    for _ in range(2)
                ]
                assert [r["seq"] for r in replies] == [0, 1]
            finally:
                writer.close()
            assert server.conn_counters["held"] == 1
            assert server.engine.processed == 2

        asyncio.run(with_server(body))

    def test_session_window_bounds_the_hold_buffer(self):
        policy = ConnectionPolicy(session_window=4)

        async def body(server):
            packets = make_trace().packets
            reader, writer = await raw_connect(server.port)
            try:
                await raw_request(
                    reader, writer,
                    {"type": protocol.HELLO, "session": "s-win"},
                )
                error = await raw_request(
                    reader, writer, self.translate_msg(packets[0], 100)
                )
                assert error["code"] == protocol.E_TOO_MANY_INFLIGHT
            finally:
                writer.close()

        asyncio.run(with_server(body, policy=policy))

    def test_reconnect_resumes_session_and_ack_evicts_cache(self):
        async def body(server):
            packets = make_trace().packets
            reader, writer = await raw_connect(server.port)
            first = await raw_request(
                reader, writer, {"type": protocol.HELLO, "session": "s-re"}
            )
            assert first["type"] == protocol.HELLO_OK
            reply = await raw_request(
                reader, writer, self.translate_msg(packets[0], 0)
            )
            writer.close()
            # Reconnect under the same session id.
            reader, writer = await raw_connect(server.port)
            try:
                await raw_request(
                    reader, writer,
                    {"type": protocol.HELLO, "session": "s-re"},
                )
                assert server.conn_counters["reconnects"] == 1
                resent = await raw_request(
                    reader, writer, self.translate_msg(packets[0], 0)
                )
                assert resent == reply
                session = server._sessions["s-re"]
                assert 0 in session.cache
                # ack=1 says seq 0 will never be resent again.
                nxt = await raw_request(
                    reader, writer,
                    self.translate_msg(packets[1], 1, ack=1),
                )
                assert nxt["type"] == protocol.RESULT
                assert 0 not in session.cache
                assert session.acked == 1
            finally:
                writer.close()
            assert server.engine.processed == 2

        asyncio.run(with_server(body))

    def test_sessionless_wire_format_is_unchanged(self):
        # Legacy clients must see byte-identical behaviour: no session
        # field in hello_ok, no session state server-side.
        async def body(server):
            reader, writer = await raw_connect(server.port)
            try:
                hello = await raw_request(
                    reader, writer, {"type": protocol.HELLO}
                )
                assert "session" not in hello
            finally:
                writer.close()
            assert not server._sessions

        asyncio.run(with_server(body))


class TestSweepRegistration:
    def test_service_saturation_registered(self):
        from repro.analysis.experiments import ALL_EXPERIMENTS

        assert "service_saturation" in ALL_EXPERIMENTS

    def test_driver_produces_full_matrix(self):
        from repro.analysis.scale import SMOKE
        from repro.analysis.service_saturation import service_saturation

        table = service_saturation(SMOKE)
        # smoke: 2 client counts x 1 tenant count
        assert len(table.rows) == 2
        for row in table.rows:
            requests = row[2]
            assert requests == 400
