"""Unit tests for the set-associative cache."""

import pytest

from repro.cache.setassoc import (
    FullyAssociativeCache,
    SetAssociativeCache,
    default_indexer,
    fold_index,
)


@pytest.fixture
def cache():
    return SetAssociativeCache(num_entries=16, ways=4, policy="lru", name="t")


class TestBasics:
    def test_miss_then_hit(self, cache):
        assert cache.lookup("k") is None
        cache.insert("k", 1)
        assert cache.lookup("k") == 1

    def test_stats_track_hits_and_misses(self, cache):
        cache.lookup("k")
        cache.insert("k", 1)
        cache.lookup("k")
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1
        assert cache.stats.hit_rate == 0.5

    def test_update_existing_key(self, cache):
        cache.insert("k", 1)
        cache.insert("k", 2)
        assert cache.lookup("k") == 2
        assert len(cache) == 1

    def test_probe_has_no_stat_side_effects(self, cache):
        cache.insert("k", 1)
        cache.probe("k")
        cache.probe("missing")
        assert cache.stats.hits == 0
        assert cache.stats.misses == 0

    def test_contains(self, cache):
        cache.insert("k", 1)
        assert cache.contains("k")
        assert not cache.contains("other")

    def test_len_counts_entries(self, cache):
        for index in range(5):
            cache.insert(("s", index), index)
        assert len(cache) == 5

    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            SetAssociativeCache(num_entries=10, ways=4)
        with pytest.raises(ValueError):
            SetAssociativeCache(num_entries=0, ways=1)


class TestEviction:
    def test_set_capacity_enforced(self):
        cache = SetAssociativeCache(
            num_entries=4, ways=4, policy="lru", indexer=lambda key, n: 0
        )
        for index in range(6):
            cache.insert(index, index)
        assert len(cache) == 4
        assert cache.stats.evictions == 2

    def test_lru_eviction_order(self):
        cache = SetAssociativeCache(
            num_entries=2, ways=2, policy="lru", indexer=lambda key, n: 0
        )
        cache.insert("a", 1)
        cache.insert("b", 2)
        cache.lookup("a")
        cache.insert("c", 3)  # evicts b
        assert cache.probe("a") == 1
        assert cache.probe("b") is None

    def test_conflicting_sets_do_not_interfere(self):
        cache = SetAssociativeCache(
            num_entries=4, ways=2, policy="lru", indexer=lambda key, n: key % n
        )
        cache.insert(0, "even")
        cache.insert(1, "odd")
        cache.insert(2, "even2")
        cache.insert(4, "even3")  # evicts 0, set 0 only
        assert cache.probe(1) == "odd"


class TestInvalidate:
    def test_invalidate_present(self, cache):
        cache.insert("k", 1)
        assert cache.invalidate("k")
        assert cache.probe("k") is None

    def test_invalidate_absent(self, cache):
        assert not cache.invalidate("k")

    def test_invalidate_all(self, cache):
        for index in range(8):
            cache.insert(("s", index), index)
        cache.invalidate_all()
        assert len(cache) == 0

    def test_reinsert_after_invalidate(self, cache):
        cache.insert("k", 1)
        cache.invalidate("k")
        cache.insert("k", 2)
        assert cache.lookup("k") == 2


class TestPinning:
    def _full_row_cache(self):
        return SetAssociativeCache(
            num_entries=4, ways=4, policy="lru", indexer=lambda key, n: 0
        )

    def test_pinned_entry_survives_fill_pressure(self):
        cache = self._full_row_cache()
        cache.insert("pinned", 1, pinned=True)
        for index in range(8):
            cache.insert(("fill", index), index)
        assert cache.probe("pinned") == 1

    def test_pin_released_on_first_hit(self):
        cache = self._full_row_cache()
        cache.insert("pinned", 1, pinned=True)
        cache.lookup("pinned")  # unpins
        cache.lookup("pinned")
        for index in range(8):
            cache.insert(("fill", index), index)
        assert cache.probe("pinned") is None

    def test_pin_budget_recycles_oldest(self):
        cache = self._full_row_cache()  # pin capacity = ways - 2 = 2
        cache.insert("p1", 1, pinned=True)
        cache.insert("p2", 2, pinned=True)
        cache.insert("p3", 3, pinned=True)  # recycles p1's pin
        for index in range(8):
            cache.insert(("fill", index), index)
        assert cache.probe("p2") == 2
        assert cache.probe("p3") == 3
        assert cache.probe("p1") is None

    def test_pin_capacity_leaves_unpinned_ways(self):
        cache = self._full_row_cache()
        assert cache.pin_capacity == 2

    def test_direct_mapped_cache_has_no_pinning(self):
        cache = SetAssociativeCache(num_entries=4, ways=1)
        assert cache.pin_capacity == 0
        cache.insert("k", 1, pinned=True)  # silently unpinned
        assert cache.probe("k") == 1

    def test_invalidate_clears_pin(self):
        cache = self._full_row_cache()
        cache.insert("pinned", 1, pinned=True)
        cache.invalidate("pinned")
        cache.insert("pinned", 2)  # plain insert, no pin
        for index in range(8):
            cache.insert(("fill", index), index)
        assert cache.probe("pinned") is None


class TestIndexing:
    def test_fold_index_spreads_2m_aligned_pages(self):
        """2 MB-aligned page numbers must not all land in set 0."""
        pages = [0xBBE00 + i * 0x200 for i in range(16)]
        sets = {fold_index(page) % 8 for page in pages}
        assert len(sets) > 1

    def test_default_indexer_uses_page_part_of_tuple(self):
        a = default_indexer((0, 0xBBE00), 8)
        b = default_indexer((1, 0xBBE00), 8)
        assert a == b  # same page, different SID -> same set (conflict!)

    def test_indexer_out_of_range_rejected(self):
        cache = SetAssociativeCache(
            num_entries=4, ways=2, indexer=lambda key, n: n + 1
        )
        with pytest.raises(ValueError):
            cache.lookup("k")


class TestFullyAssociative:
    def test_single_set(self):
        cache = FullyAssociativeCache(num_entries=8)
        assert cache.num_sets == 1
        assert cache.ways == 8

    def test_capacity(self):
        cache = FullyAssociativeCache(num_entries=4, policy="lru")
        for index in range(6):
            cache.insert(index, index)
        assert len(cache) == 4

    def test_no_conflict_misses(self):
        """Any 4 distinct keys coexist regardless of their addresses."""
        cache = FullyAssociativeCache(num_entries=4)
        keys = [(0, 0xBBE00 + i * 0x200) for i in range(4)]
        for key in keys:
            cache.insert(key, key)
        assert all(cache.probe(key) is not None for key in keys)
