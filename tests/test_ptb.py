"""Unit tests for the Pending Translation Buffer."""

import pytest

from repro.core.ptb import PendingTranslationBuffer


class TestAdmission:
    def test_empty_buffer_accepts(self):
        ptb = PendingTranslationBuffer(4)
        assert ptb.can_accept(0.0)

    def test_full_buffer_rejects(self):
        ptb = PendingTranslationBuffer(2)
        ptb.issue(0.0, 100.0)
        ptb.issue(0.0, 100.0)
        assert not ptb.can_accept(0.0)

    def test_completion_frees_entry(self):
        ptb = PendingTranslationBuffer(1)
        ptb.issue(0.0, 100.0)
        assert not ptb.can_accept(50.0)
        assert ptb.can_accept(100.0)

    def test_out_of_order_completion(self):
        """A short translation completes (and frees its entry) before a
        long one issued earlier — the head-of-line-blocking avoidance the
        PTB exists for."""
        ptb = PendingTranslationBuffer(2)
        ptb.issue(0.0, 1000.0)  # long walk
        ptb.issue(0.0, 10.0)  # DevTLB hit
        assert ptb.occupancy(20.0) == 1
        assert ptb.can_accept(20.0)

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            PendingTranslationBuffer(0)


class TestIssueTiming:
    def test_completion_time_is_start_plus_latency(self):
        ptb = PendingTranslationBuffer(4)
        assert ptb.issue(10.0, 5.0) == 15.0

    def test_single_entry_serialises_requests(self):
        """With the Base design's 1-entry PTB, a packet's three requests
        trickle through one at a time."""
        ptb = PendingTranslationBuffer(1)
        first = ptb.issue(0.0, 100.0)
        second = ptb.issue(0.0, 100.0)
        third = ptb.issue(0.0, 100.0)
        assert (first, second, third) == (100.0, 200.0, 300.0)

    def test_parallel_entries_do_not_serialise(self):
        ptb = PendingTranslationBuffer(3)
        completions = [ptb.issue(0.0, 100.0) for _ in range(3)]
        assert completions == [100.0, 100.0, 100.0]

    def test_negative_latency_rejected(self):
        ptb = PendingTranslationBuffer(1)
        with pytest.raises(ValueError):
            ptb.issue(0.0, -1.0)

    def test_earliest_free_time_when_free(self):
        ptb = PendingTranslationBuffer(2)
        assert ptb.earliest_free_time(5.0) == 5.0

    def test_earliest_free_time_when_full(self):
        ptb = PendingTranslationBuffer(1)
        ptb.issue(0.0, 100.0)
        assert ptb.earliest_free_time(10.0) == 100.0


class TestStats:
    def test_issue_counting(self):
        ptb = PendingTranslationBuffer(4)
        for _ in range(5):
            ptb.issue(0.0, 1.0)
        assert ptb.stats.issued == 5

    def test_max_occupancy_tracked(self):
        ptb = PendingTranslationBuffer(4)
        for _ in range(3):
            ptb.issue(0.0, 1000.0)
        assert ptb.stats.max_occupancy == 3

    def test_mean_occupancy(self):
        ptb = PendingTranslationBuffer(4)
        ptb.issue(0.0, 1000.0)  # occupancy 1
        ptb.issue(0.0, 1000.0)  # occupancy 2
        assert ptb.stats.mean_occupancy == pytest.approx(1.5)

    def test_reject_counting(self):
        ptb = PendingTranslationBuffer(1)
        ptb.reject_packet()
        ptb.reject_packet()
        assert ptb.stats.rejected_packets == 2

    def test_drain_all_returns_last_completion(self):
        ptb = PendingTranslationBuffer(4)
        ptb.issue(0.0, 100.0)
        ptb.issue(0.0, 300.0)
        assert ptb.drain_all() == 300.0

    def test_drain_all_empty(self):
        assert PendingTranslationBuffer(1).drain_all() == 0.0

    def test_reset(self):
        ptb = PendingTranslationBuffer(2)
        ptb.issue(0.0, 100.0)
        ptb.reject_packet()
        ptb.reset()
        assert ptb.stats.issued == 0
        assert ptb.can_accept(0.0)
        assert ptb.occupancy(0.0) == 0
