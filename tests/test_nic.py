"""Tests for the step-by-step NIC device API."""

import pytest

from repro.core.config import base_config, hypertrio_config
from repro.device.nic import NicDevice
from repro.device.packet import RequestKind
from repro.trace.constructor import construct_trace
from repro.trace.tenant import IPERF3, MEDIASTREAM


@pytest.fixture
def trace():
    return construct_trace(
        IPERF3, num_tenants=2, packets_per_tenant=50_000, max_packets=50
    )


@pytest.fixture
def nic(trace):
    return NicDevice(base_config(), trace.system)


class TestReceive:
    def test_cold_packet_goes_through_iommu(self, nic, trace):
        report = nic.receive(trace.packets[0], now=0.0)
        assert report.accepted
        assert len(report.requests) == 3
        assert all(r.source == "iommu" for r in report.requests)
        assert report.translation_latency_ns > 900  # at least one round trip

    def test_warm_packet_hits_devtlb(self, nic, trace):
        packet = trace.packets[0]
        nic.receive(packet, now=0.0)
        report = nic.receive(packet, now=1e6)
        assert all(r.source == "devtlb" for r in report.requests)
        assert report.translation_latency_ns < 10

    def test_request_kinds_in_order(self, nic, trace):
        report = nic.receive(trace.packets[0], now=0.0)
        assert [r.kind for r in report.requests] == [
            RequestKind.RING_POINTER,
            RequestKind.DATA_BUFFER,
            RequestKind.MAILBOX,
        ]

    def test_hpa_matches_functional_translation(self, nic, trace):
        packet = trace.packets[0]
        report = nic.receive(packet, now=0.0)
        space = trace.system.workloads[packet.sid].space
        for request in report.requests:
            expected = space.translate(request.giova)
            assert request.hpa == expected & ~0xFFF or request.hpa == (
                expected - (expected % (1 << 21))
            )

    def test_describe_is_human_readable(self, nic, trace):
        report = nic.receive(trace.packets[0], now=0.0)
        text = report.requests[0].describe()
        assert "gIOVA" in text and "ns" in text

    def test_base_device_drops_when_ptb_full(self, nic, trace):
        # The Base PTB has one entry; a cold packet's walk occupies it.
        nic.receive(trace.packets[0], now=0.0)
        report = nic.receive(trace.packets[1], now=1.0)
        assert not report.accepted
        assert nic.drop_rate == pytest.approx(0.5)

    def test_hypertrio_device_absorbs_bursts(self, trace):
        nic = NicDevice(hypertrio_config(), trace.system)
        reports = [nic.receive(p, now=float(i)) for i, p in
                   enumerate(trace.packets[:8])]
        assert all(r.accepted for r in reports)


class TestInvalidate:
    def test_invalidate_forces_rewalk(self, nic, trace):
        packet = trace.packets[0]
        nic.receive(packet, now=0.0)
        assert nic.invalidate(packet.sid, packet.giovas[0])
        report = nic.receive(packet, now=1e6)
        assert report.requests[0].source == "iommu"

    def test_invalidate_absent_returns_false(self, nic):
        assert not nic.invalidate(0, 0xDEAD_0000)


class TestMultiTenant:
    def test_tenants_translate_to_distinct_frames(self, trace):
        nic = NicDevice(hypertrio_config(), trace.system)
        first = nic.receive(trace.packets[0], now=0.0)
        second = nic.receive(trace.packets[1], now=1e6)
        assert trace.packets[0].sid != trace.packets[1].sid
        assert first.requests[0].hpa != second.requests[0].hpa

    def test_drop_rate_zero_initially(self, trace):
        nic = NicDevice(base_config(), trace.system)
        assert nic.drop_rate == 0.0
