"""Unit tests for the two-dimensional page-table walker."""

import pytest

from repro.mem.address import PAGE_SHIFT_2M, PAGE_SHIFT_4K
from repro.mem.pagetable import TranslationFault
from repro.mem.walker import TwoDimensionalWalker


@pytest.fixture
def walker(address_space):
    address_space.map_io_page(0x3480_0000)  # 4 KB ring page
    address_space.map_io_page(0xBBE0_0000, PAGE_SHIFT_2M)  # 2 MB data page
    return TwoDimensionalWalker(address_space)


class TestWalkCounts:
    def test_4k_walk_has_24_memory_accesses(self, walker):
        """The paper's Table II: 24 accesses for a two-dimensional 4-level
        walk over 4 KB pages."""
        walk = walker.walk(0x3480_0000)
        assert walk.total_memory_accesses == 24

    def test_2m_walk_has_19_memory_accesses(self, walker):
        """Guest walks of 2 MB mappings stop one level early."""
        walk = walker.walk(0xBBE0_0000)
        assert walk.total_memory_accesses == 19

    def test_4k_walk_has_five_phases(self, walker):
        walk = walker.walk(0x3480_0000)
        assert len(walk.phases) == 5
        assert [phase.guest_level for phase in walk.phases] == [4, 3, 2, 1, 0]

    def test_2m_walk_has_four_phases(self, walker):
        walk = walker.walk(0xBBE0_0000)
        assert [phase.guest_level for phase in walk.phases] == [4, 3, 2, 0]

    def test_every_phase_hosts_a_full_host_walk(self, walker):
        walk = walker.walk(0x3480_0000)
        for phase in walk.phases:
            assert len(phase.host_steps) == 4

    def test_final_phase_has_no_guest_entry(self, walker):
        walk = walker.walk(0x3480_0000)
        assert walk.phases[-1].guest_entry_hpa is None
        for phase in walk.phases[:-1]:
            assert phase.guest_entry_hpa is not None


class TestWalkResults:
    def test_walk_hpa_matches_functional_translation(self, walker, address_space):
        walk = walker.walk(0x3480_0000)
        assert walk.hpa == address_space.translate(0x3480_0000)

    def test_page_shift_propagated(self, walker):
        assert walker.walk(0x3480_0000).page_shift == PAGE_SHIFT_4K
        assert walker.walk(0xBBE0_0000).page_shift == PAGE_SHIFT_2M

    def test_unmapped_giova_faults(self, walker):
        with pytest.raises(TranslationFault):
            walker.walk(0xDEAD_0000)

    def test_upper_phases_shared_between_nearby_pages(self, walker, address_space):
        address_space.map_io_page(0x3500_0000)
        walker.invalidate()
        ring = walker.walk(0x3480_0000)
        mailbox = walker.walk(0x3500_0000)
        # Same gL4/gL3/gL2 node pages (both addresses fall in the same
        # 512 GB / 1 GB regions), so the first three phases translate the
        # same gPAs; the gL1 nodes differ.
        assert ring.phases[0].gpa_page == mailbox.phases[0].gpa_page
        assert ring.phases[1].gpa_page == mailbox.phases[1].gpa_page
        assert ring.phases[2].gpa_page == mailbox.phases[2].gpa_page
        assert ring.phases[3].gpa_page != mailbox.phases[3].gpa_page


class TestMemoization:
    def test_same_page_returns_cached_walk(self, walker):
        first = walker.walk(0x3480_0000)
        second = walker.walk(0x3480_0008)  # same 4 KB page
        assert first is second

    def test_different_pages_not_shared(self, walker):
        assert walker.walk(0x3480_0000) is not walker.walk(0xBBE0_0000)

    def test_invalidate_single_page(self, walker):
        first = walker.walk(0x3480_0000)
        walker.invalidate(0x3480_0000)
        assert walker.walk(0x3480_0000) is not first

    def test_invalidate_all(self, walker):
        first = walker.walk(0x3480_0000)
        walker.invalidate()
        assert walker.walk(0x3480_0000) is not first
