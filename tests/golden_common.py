"""Shared definitions for the ``devices=1`` golden-file regression.

The multi-device fabric refactor must be behaviour-preserving at the
default of one device: for the configurations below — the Figure-5 case
study point and representative sweep points — the refactored simulator
must produce a :class:`~repro.core.results.SimulationResult` that is
field-identical to the pre-refactor engine.  The pinned expectations in
``tests/data/golden_devices1.json`` were generated *before* the refactor
(by ``scripts/generate_golden.py``); the regression test recomputes every
point with the current code and compares serialised results key by key.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict

from repro.core.config import base_config, case_study_timing, hypertrio_config
from repro.runner.serialize import result_to_dict
from repro.sim.simulator import HyperSimulator
from repro.trace.constructor import construct_trace
from repro.trace.tenant import profile_by_name

GOLDEN_PATH = Path(__file__).parent / "data" / "golden_devices1.json"

#: name -> (config factory kwargs, workload coordinates).  Every point uses
#: a short trace so the regression stays fast while still exercising the
#: prefetcher, invalidations, bounded walkers, and the 10 Gb/s case study.
GOLDEN_POINTS: Dict[str, Dict[str, Any]] = {
    "figure5_case_study": {
        "config": "base_10g",
        "benchmark": "iperf3",
        "tenants": 8,
        "interleaving": "RR1",
        "packets": 2000,
        "warmup": 500,
    },
    "sweep_base_mediastream": {
        "config": "base",
        "benchmark": "mediastream",
        "tenants": 8,
        "interleaving": "RR1",
        "packets": 2000,
        "warmup": 500,
    },
    "sweep_hypertrio_mediastream": {
        "config": "hypertrio",
        "benchmark": "mediastream",
        "tenants": 8,
        "interleaving": "RR1",
        "packets": 2000,
        "warmup": 500,
    },
    "hypertrio_walkers_keyvalue": {
        "config": "hypertrio_walkers2",
        "benchmark": "keyvalue",
        "tenants": 4,
        "interleaving": "RAND1",
        "packets": 1500,
        "warmup": 300,
    },
}


def _build_config(name: str):
    if name == "base":
        return base_config()
    if name == "base_10g":
        return base_config(timing=case_study_timing())
    if name == "hypertrio":
        return hypertrio_config()
    if name == "hypertrio_walkers2":
        return hypertrio_config().with_overrides(iommu_walkers=2)
    raise ValueError(f"unknown golden config {name!r}")


def compute_golden_point(
    spec: Dict[str, Any],
    checkpoint_every: int = 0,
    checkpoint_path=None,
) -> Dict[str, Any]:
    """Run one golden point and return its serialised result.

    ``checkpoint_every``/``checkpoint_path`` re-run the point with
    periodic snapshots enabled (``tests/test_checkpoint.py`` pins that
    snapshotting never moves a golden number).
    """
    trace = construct_trace(
        profile_by_name(spec["benchmark"]),
        num_tenants=spec["tenants"],
        packets_per_tenant=200_000,
        interleaving=spec["interleaving"],
        seed=0,
        max_packets=spec["packets"],
    )
    config = _build_config(spec["config"])
    result = HyperSimulator(config, trace).run(
        warmup_packets=spec["warmup"],
        checkpoint_every=checkpoint_every,
        checkpoint_path=checkpoint_path,
    )
    return result_to_dict(result)


def compute_all_golden_points() -> Dict[str, Dict[str, Any]]:
    return {name: compute_golden_point(spec) for name, spec in GOLDEN_POINTS.items()}
