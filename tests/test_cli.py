"""Tests for the repro-sim command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.benchmark == "mediastream"
        assert args.config == "hypertrio"
        assert args.tenants == 64

    def test_invalid_benchmark_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--benchmark", "nginx"])

    def test_experiment_scale_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "figure10", "--scale", "huge"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "figure10" in output
        assert "mediastream" in output

    def test_simulate_small_run(self, capsys):
        code = main([
            "simulate", "--benchmark", "iperf3", "--tenants", "2",
            "--config", "base", "--packets", "400",
        ])
        assert code == 0
        output = capsys.readouterr().out
        assert "Base" in output
        assert "Gb/s" in output

    def test_simulate_verbose_prints_caches(self, capsys):
        main([
            "simulate", "--benchmark", "iperf3", "--tenants", "2",
            "--config", "hypertrio", "--packets", "400", "-v",
        ])
        output = capsys.readouterr().out
        assert "devtlb" in output

    def test_characterize(self, capsys):
        code = main([
            "characterize", "--benchmark", "iperf3", "--packets", "500",
        ])
        assert code == 0
        output = capsys.readouterr().out
        assert "ring" in output
        assert "periodic" in output

    def test_experiment_table2(self, capsys, monkeypatch):
        code = main(["experiment", "table2"])
        assert code == 0
        assert "Table II" in capsys.readouterr().out

    def test_experiment_unknown_name(self, capsys):
        code = main(["experiment", "figure99"])
        assert code == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_simulate_with_config_file(self, capsys, tmp_path):
        from repro.core.config import hypertrio_config
        from repro.core.config_io import save_config

        path = tmp_path / "custom.json"
        config = hypertrio_config().with_overrides(name="Custom")
        save_config(config, path)
        code = main([
            "simulate", "--benchmark", "iperf3", "--tenants", "2",
            "--packets", "300", "--config-file", str(path),
        ])
        assert code == 0
        assert "Custom" in capsys.readouterr().out

    def test_sweep_with_chart(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "smoke")
        code = main([
            "sweep", "--benchmark", "iperf3", "--tenants", "2,4", "--chart",
        ])
        assert code == 0
        output = capsys.readouterr().out
        assert "Base" in output and "HyperTRIO" in output
        assert "utilisation" in output  # chart title rendered
