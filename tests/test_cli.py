"""Tests for the repro-sim command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.benchmark == "mediastream"
        assert args.config == "hypertrio"
        assert args.tenants == 64

    def test_invalid_benchmark_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--benchmark", "nginx"])

    def test_experiment_scale_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "figure10", "--scale", "huge"])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "--experiment", "figure10"])
        assert args.jobs == 0  # all cores
        assert args.run_id is None and args.resume is None
        assert args.runs_dir == ".repro-runs"
        assert args.retries == 1 and args.timeout is None

    def test_run_requires_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run"])

    def test_sweep_packets_defaults_to_scale_cap(self):
        args = build_parser().parse_args(["sweep"])
        assert args.packets is None


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "figure10" in output
        assert "mediastream" in output

    def test_simulate_small_run(self, capsys):
        code = main([
            "simulate", "--benchmark", "iperf3", "--tenants", "2",
            "--config", "base", "--packets", "400",
        ])
        assert code == 0
        output = capsys.readouterr().out
        assert "Base" in output
        assert "Gb/s" in output

    def test_simulate_malformed_sid_map_reports_entry(self, capsys):
        """A bad explicit --sid-map entry must not traceback: it names
        the offending entry on stderr and exits 2."""
        code = main([
            "simulate", "--tenants", "2", "--packets", "100",
            "--devices", "2", "--sid-map", "explicit:0=0,1=oops",
        ])
        assert code == 2
        err = capsys.readouterr().err
        assert "1=oops" in err
        assert "bad --sid-map" in err

    def test_sweep_malformed_sid_map_reports_entry(self, capsys):
        code = main([
            "sweep", "--tenants", "2", "--packets", "100",
            "--devices", "2", "--sid-map", "explicit:x=0",
        ])
        assert code == 2
        err = capsys.readouterr().err
        assert "x=0" in err

    def test_simulate_sid_map_unknown_scheme_exits_cleanly(self, capsys):
        code = main([
            "simulate", "--tenants", "2", "--packets", "100",
            "--devices", "2", "--sid-map", "randomly",
        ])
        assert code == 2
        assert "randomly" in capsys.readouterr().err

    def test_serve_parser_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.port == 0 and args.host == "127.0.0.1"
        assert args.backpressure == "shed"
        assert args.rate is None and args.max_queue_depth is None

    def test_bench_parser_defaults(self):
        args = build_parser().parse_args(["bench"])
        assert args.root == "." and args.output is None

    def test_simulate_verbose_prints_caches(self, capsys):
        main([
            "simulate", "--benchmark", "iperf3", "--tenants", "2",
            "--config", "hypertrio", "--packets", "400", "-v",
        ])
        output = capsys.readouterr().out
        assert "devtlb" in output

    def test_characterize(self, capsys):
        code = main([
            "characterize", "--benchmark", "iperf3", "--packets", "500",
        ])
        assert code == 0
        output = capsys.readouterr().out
        assert "ring" in output
        assert "periodic" in output

    def test_experiment_table2(self, capsys, monkeypatch):
        code = main(["experiment", "table2"])
        assert code == 0
        assert "Table II" in capsys.readouterr().out

    def test_experiment_unknown_name(self, capsys):
        code = main(["experiment", "figure99"])
        assert code == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_simulate_with_config_file(self, capsys, tmp_path):
        from repro.core.config import hypertrio_config
        from repro.core.config_io import save_config

        path = tmp_path / "custom.json"
        config = hypertrio_config().with_overrides(name="Custom")
        save_config(config, path)
        code = main([
            "simulate", "--benchmark", "iperf3", "--tenants", "2",
            "--packets", "300", "--config-file", str(path),
        ])
        assert code == 0
        assert "Custom" in capsys.readouterr().out

    def test_sweep_with_chart(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "smoke")
        code = main([
            "sweep", "--benchmark", "iperf3", "--tenants", "2,4", "--chart",
        ])
        assert code == 0
        output = capsys.readouterr().out
        assert "Base" in output and "HyperTRIO" in output
        assert "utilisation" in output  # chart title rendered

    def test_sweep_forwards_seed_and_packets(self, capsys, monkeypatch):
        import types

        monkeypatch.setenv("REPRO_BENCH_SCALE", "smoke")
        calls = []

        def fake_run_point(config, benchmark, count, interleaving, scale,
                           native=False, seed=0, fault_plan=None,
                           engine="analytic"):
            calls.append({"seed": seed, "max_packets": scale.max_packets,
                          "engine": engine})
            return types.SimpleNamespace(utilization_percent=50.0)

        monkeypatch.setattr("repro.cli.run_point", fake_run_point)
        code = main([
            "sweep", "--tenants", "2", "--seed", "7", "--packets", "777",
        ])
        assert code == 0
        assert calls and all(c["seed"] == 7 for c in calls)
        assert all(c["max_packets"] == 777 for c in calls)

    def test_sweep_without_packets_uses_scale_cap(self, capsys, monkeypatch):
        import types

        monkeypatch.setenv("REPRO_BENCH_SCALE", "smoke")
        calls = []

        def fake_run_point(config, benchmark, count, interleaving, scale,
                           native=False, seed=0, fault_plan=None,
                           engine="analytic"):
            calls.append(scale.max_packets)
            return types.SimpleNamespace(utilization_percent=50.0)

        monkeypatch.setattr("repro.cli.run_point", fake_run_point)
        assert main(["sweep", "--tenants", "2"]) == 0
        from repro.analysis.scale import SMOKE
        assert calls and all(cap == SMOKE.max_packets for cap in calls)


class TestObservabilityFlags:
    def test_simulate_trace_flags_default_off(self):
        args = build_parser().parse_args(["simulate"])
        assert args.trace_out is None
        assert args.metrics_out is None
        assert args.trace_sample == 1.0

    def test_simulate_parses_trace_and_metrics_out(self):
        args = build_parser().parse_args([
            "simulate", "--trace-out", "t.json",
            "--metrics-out", "m.json", "--trace-sample", "0.25",
        ])
        assert args.trace_out == "t.json"
        assert args.metrics_out == "m.json"
        assert args.trace_sample == 0.25

    def test_sweep_parses_metrics_out(self):
        args = build_parser().parse_args(["sweep", "--metrics-out", "s.json"])
        assert args.metrics_out == "s.json"

    def test_report_metrics_parses(self):
        args = build_parser().parse_args([
            "report-metrics", "m.json", "--chart", "--top", "5",
        ])
        assert args.metrics_file == "m.json" and args.chart and args.top == 5

    def test_report_metrics_requires_file(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["report-metrics"])

    def test_simulate_exports_then_report_renders(self, capsys, tmp_path):
        import json

        trace_path = tmp_path / "run.trace.json"
        metrics_path = tmp_path / "run.metrics.json"
        code = main([
            "simulate", "--benchmark", "iperf3", "--tenants", "4",
            "--config", "base", "--packets", "600",
            "--trace-out", str(trace_path),
            "--metrics-out", str(metrics_path),
        ])
        assert code == 0
        output = capsys.readouterr().out
        assert "trace:" in output and "metrics:" in output

        trace = json.loads(trace_path.read_text())
        assert trace["displayTimeUnit"] == "ns"
        assert any(e["ph"] == "X" for e in trace["traceEvents"])

        document = json.loads(metrics_path.read_text())
        assert document["schema"].startswith("repro-obs-metrics/")
        assert document["per_sid_latency"]  # one entry per active tenant

        assert main(["report-metrics", str(metrics_path), "--chart"]) == 0
        report = capsys.readouterr().out
        assert "translation latency percentiles by SID" in report
        assert "p99" in report

    def test_report_metrics_rejects_non_metrics_file(self, capsys, tmp_path):
        bogus = tmp_path / "other.json"
        bogus.write_text('{"schema": "something-else/1"}')
        assert main(["report-metrics", str(bogus)]) == 2
        assert "not a repro-obs metrics file" in capsys.readouterr().err

    def test_report_metrics_missing_file(self, capsys, tmp_path):
        assert main(["report-metrics", str(tmp_path / "nope.json")]) == 2
        assert "no such metrics file" in capsys.readouterr().err

    def test_sweep_metrics_out_writes_per_point_latency(
        self, capsys, tmp_path, monkeypatch
    ):
        import json

        monkeypatch.setenv("REPRO_BENCH_SCALE", "smoke")
        metrics_path = tmp_path / "sweep.metrics.json"
        code = main([
            "sweep", "--benchmark", "iperf3", "--tenants", "2",
            "--packets", "400", "--metrics-out", str(metrics_path),
        ])
        assert code == 0
        document = json.loads(metrics_path.read_text())
        assert document["schema"].startswith("repro-obs-sweep/")
        assert document["points"]
        for point in document["points"]:
            latency = point["latency"]
            assert latency["count"] > 0
            assert latency["p50_ns"] <= latency["p95_ns"] <= latency["p99_ns"]


class TestRunCommand:
    def test_unknown_experiment(self, capsys, tmp_path):
        code = main([
            "run", "--experiment", "figure99", "--runs-dir", str(tmp_path),
        ])
        assert code == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_resume_missing_run(self, capsys, tmp_path):
        code = main([
            "run", "--experiment", "figure9", "--resume", "nope",
            "--runs-dir", str(tmp_path),
        ])
        assert code == 2
        assert "no run directory" in capsys.readouterr().err

    def test_parallel_run_then_fully_cached_rerun(self, capsys, tmp_path,
                                                  monkeypatch):
        argv = [
            "run", "--experiment", "figure9", "--jobs", "2",
            "--scale", "smoke", "--runs-dir", str(tmp_path),
            "--run-id", "ci", "--no-progress",
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "Figure 9" in first
        assert "4 jobs: 4 executed, 0 cached" in first

        # Same run-id again: zero simulations re-executed.
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert "4 jobs: 0 executed, 4 cached" in second
        # The tables themselves are identical.
        assert first.split("[run")[0] == second.split("[run")[0]

        manifest = (tmp_path / "ci" / "manifest.json").read_text()
        assert '"experiment": "figure9"' in manifest
        assert '"cpu_count"' in manifest
