"""Unit tests for the SID-partitioned cache (P-DevTLB scheme)."""

import pytest

from repro.cache.partitioned import PartitionedCache, partition_of


@pytest.fixture
def cache():
    # The paper's P-DevTLB: 64 entries, 8-way, 8 partitions (one row each).
    return PartitionedCache(num_entries=64, ways=8, num_partitions=8, policy="lfu")


class TestPartitionSelection:
    def test_partition_of_uses_low_sid_bits(self):
        assert partition_of(0, 8) == 0
        assert partition_of(9, 8) == 1
        assert partition_of(17, 8) == 1

    def test_partition_of_rejects_bad_count(self):
        with pytest.raises(ValueError):
            partition_of(3, 0)

    def test_partitions_must_divide_sets(self):
        with pytest.raises(ValueError):
            PartitionedCache(num_entries=64, ways=8, num_partitions=3)

    def test_keys_must_be_sid_page_tuples(self, cache):
        with pytest.raises(TypeError):
            cache.lookup("not-a-tuple")


class TestIsolation:
    def test_tenants_in_different_partitions_cannot_conflict(self, cache):
        """A low-bandwidth tenant must not evict a high-bandwidth tenant in
        another partition (the paper's performance-isolation property)."""
        cache.insert((0, 0xBBE00), "t0")
        # Tenant 1 floods its own partition with many pages.
        for page in range(100):
            cache.insert((1, page), page)
        assert cache.probe((0, 0xBBE00)) == "t0"

    def test_same_partition_tenants_share_a_row(self, cache):
        """SIDs 0 and 8 share partition 0; flooding one evicts the other."""
        cache.insert((0, 0xBBE00), "t0")
        for page in range(100):
            cache.insert((8, page), page)
        assert cache.probe((0, 0xBBE00)) is None

    def test_identical_pages_different_partitions_coexist(self, cache):
        """The multi-tenant pathology: every tenant uses the same gIOVAs.
        Partitioning keeps them apart."""
        for sid in range(8):
            cache.insert((sid, 0xBBE00), sid)
        assert all(cache.probe((sid, 0xBBE00)) == sid for sid in range(8))

    def test_partition_occupancy(self, cache):
        for page in range(5):
            cache.insert((2, page), page)
        assert cache.partition_occupancy(2) == 5
        assert cache.partition_occupancy(3) == 0

    def test_partition_occupancy_bounds(self, cache):
        with pytest.raises(ValueError):
            cache.partition_occupancy(8)


class TestCapacityPerPartition:
    def test_partition_capacity_is_entries_over_partitions(self, cache):
        for page in range(20):
            cache.insert((0, page), page)
        assert cache.partition_occupancy(0) == 8  # one 8-way row

    def test_multi_set_partitions(self):
        cache = PartitionedCache(num_entries=64, ways=4, num_partitions=4)
        # 16 sets, 4 per partition, 4 ways: capacity 16 per partition.
        for page in range(40):
            cache.insert((1, page), page)
        assert cache.partition_occupancy(1) <= 16
        assert cache.partition_occupancy(1) > 4
