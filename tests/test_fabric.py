"""The multi-device I/O fabric: config, routing, assembly, round-trips."""

import json

import pytest

from repro.cli import _parse_device_config
from repro.core.config import DeviceConfig, base_config, hypertrio_config
from repro.core.config_io import (
    ConfigFormatError,
    config_from_json,
    config_to_dict,
    config_to_json,
)
from repro.core.fabric import Fabric, build_fabric
from repro.core.hypertrio import build_translation_path
from repro.core.results import DeviceResult, FabricStats
from repro.obs import Observability
from repro.runner.serialize import result_from_dict, result_to_dict
from repro.sim.simulator import HyperSimulator, simulate
from repro.trace.constructor import construct_trace
from repro.trace.tenant import KEYVALUE, MEDIASTREAM


def _trace(tenants=8, packets=600, profile=MEDIASTREAM):
    return construct_trace(
        profile,
        num_tenants=tenants,
        packets_per_tenant=50_000,
        interleaving="RR1",
        max_packets=packets,
    )


def _multi_config(count=2, **device_kwargs):
    return hypertrio_config().with_overrides(
        devices=DeviceConfig(count=count, **device_kwargs)
    )


class TestDeviceConfig:
    def test_defaults_are_single_device(self):
        config = DeviceConfig()
        assert config.count == 1
        assert config.sid_map == "round_robin"
        assert config.explicit_map == ()

    def test_count_must_be_positive(self):
        with pytest.raises(ValueError):
            DeviceConfig(count=0)

    def test_unknown_sid_map_rejected(self):
        with pytest.raises(ValueError):
            DeviceConfig(count=2, sid_map="shortest_queue")

    def test_explicit_pair_shape_checked(self):
        with pytest.raises(ValueError):
            DeviceConfig(count=2, sid_map="explicit", explicit_map=((1,),))

    def test_explicit_device_must_exist(self):
        with pytest.raises(ValueError):
            DeviceConfig(count=2, sid_map="explicit", explicit_map=((0, 5),))

    def test_round_robin_stripes_evenly(self):
        config = DeviceConfig(count=3)
        assert [config.device_for(sid) for sid in range(6)] == [0, 1, 2, 0, 1, 2]

    def test_single_device_routes_everything_to_zero(self):
        config = DeviceConfig()
        assert {config.device_for(sid) for sid in range(32)} == {0}

    def test_hash_is_stationary_and_in_range(self):
        config = DeviceConfig(count=4, sid_map="hash")
        first = [config.device_for(sid) for sid in range(64)]
        assert first == [config.device_for(sid) for sid in range(64)]
        assert all(0 <= device < 4 for device in first)
        # The hash must actually spread tenants, not collapse to one device.
        assert len(set(first)) > 1

    def test_explicit_pins_with_round_robin_fallback(self):
        config = DeviceConfig(
            count=2, sid_map="explicit", explicit_map=((0, 1), (3, 0))
        )
        assert config.device_for(0) == 1
        assert config.device_for(3) == 0
        # SIDs outside the map stripe round-robin.
        assert config.device_for(4) == 0
        assert config.device_for(5) == 1


class TestFabricAssembly:
    def test_one_device_per_count_one_chipset(self):
        fabric = build_fabric(_multi_config(count=4), walker_for_sid=lambda sid: None)
        assert fabric.num_devices == 4
        assert len(fabric.devices) == 4
        assert len({id(device.devtlb) for device in fabric.devices}) == 4

    def test_views_share_the_chipset(self):
        fabric = build_fabric(_multi_config(count=3), walker_for_sid=lambda sid: None)
        views = [fabric.view(index) for index in range(3)]
        assert all(view.chipset is fabric.chipset for view in views)
        assert views[0].device is not views[1].device

    def test_single_device_cache_names_unprefixed(self):
        fabric = build_fabric(
            hypertrio_config(), walker_for_sid=lambda sid: None
        )
        names = [name for name, _ in fabric.named_caches()]
        assert names == [
            "devtlb", "prefetch_buffer", "iotlb", "nested_tlb", "pte_cache",
        ]

    def test_multi_device_cache_names_prefixed(self):
        fabric = build_fabric(_multi_config(count=2), walker_for_sid=lambda sid: None)
        names = [name for name, _ in fabric.named_caches()]
        assert names == [
            "dev0.devtlb", "dev0.prefetch_buffer",
            "dev1.devtlb", "dev1.prefetch_buffer",
            "iotlb", "nested_tlb", "pte_cache",
        ]

    def test_build_translation_path_forces_single_device(self):
        path = build_translation_path(
            _multi_config(count=4), walker_for_sid=lambda sid: None
        )
        assert path.device.device_id == 0
        assert path.devtlb.name == "devtlb"


class TestConfigRoundTrip:
    def test_devices_block_omitted_at_default(self):
        assert "devices" not in config_to_dict(hypertrio_config())

    def test_devices_block_round_trips(self):
        config = base_config().with_overrides(
            devices=DeviceConfig(
                count=2, sid_map="explicit", explicit_map=((0, 1),)
            )
        )
        restored = config_from_json(config_to_json(config))
        assert restored.devices == config.devices
        assert restored == config

    def test_unknown_device_key_rejected(self):
        document = config_to_dict(_multi_config(count=2))
        document["devices"]["queues"] = 4
        with pytest.raises(ConfigFormatError):
            config_from_json(json.dumps(document))

    def test_invalid_device_count_rejected(self):
        document = config_to_dict(_multi_config(count=2))
        document["devices"]["count"] = 0
        with pytest.raises(ConfigFormatError):
            config_from_json(json.dumps(document))


class TestCliSidMapParsing:
    def test_round_robin_and_hash(self):
        assert _parse_device_config(2, "round_robin").sid_map == "round_robin"
        assert _parse_device_config(4, "hash").sid_map == "hash"

    def test_explicit_spec(self):
        config = _parse_device_config(2, "explicit:0=1,3=0")
        assert config.sid_map == "explicit"
        assert config.explicit_map == ((0, 1), (3, 0))

    def test_bad_specs_rejected(self):
        import argparse

        with pytest.raises(argparse.ArgumentTypeError):
            _parse_device_config(2, "explicit:0to1")
        with pytest.raises(argparse.ArgumentTypeError):
            _parse_device_config(2, "shortest_queue")


class TestMultiDeviceSimulation:
    def test_single_device_has_no_fabric_breakdown(self):
        result = simulate(hypertrio_config(), _trace())
        assert result.device_results == []
        assert result.fabric is None
        assert result.num_devices == 1

    def test_device_results_populated_when_multi(self):
        result = simulate(_multi_config(count=2), _trace())
        assert [dev.device_id for dev in result.device_results] == [0, 1]
        assert result.num_devices == 2
        assert isinstance(result.fabric, FabricStats)
        assert result.fabric.num_devices == 2

    def test_routing_conserves_packets_and_bytes(self):
        trace = _trace(tenants=8, packets=800)
        result = simulate(_multi_config(count=4), trace)
        assert sum(
            dev.packets.accepted for dev in result.device_results
        ) == result.packets.accepted
        assert sum(
            dev.packets.arrived for dev in result.device_results
        ) == result.packets.arrived
        assert sum(
            dev.packets.bytes_processed for dev in result.device_results
        ) == result.packets.bytes_processed
        assert sum(
            dev.latency.count for dev in result.device_results
        ) == result.latency.count

    def test_round_robin_split_matches_sid_striping(self):
        trace = _trace(tenants=8, packets=800)
        expected = [0, 0]
        for packet in trace.packets:
            expected[packet.sid % 2] += 1
        result = simulate(_multi_config(count=2), trace)
        assert [dev.packets.arrived for dev in result.device_results] == expected

    def test_explicit_map_pins_all_traffic_to_one_device(self):
        config = _multi_config(
            count=2,
            sid_map="explicit",
            explicit_map=tuple((sid, 1) for sid in range(4)),
        )
        result = simulate(config, _trace(tenants=4, packets=400))
        loads = [dev.packets.arrived for dev in result.device_results]
        assert loads[0] == 0
        assert loads[1] == result.packets.arrived

    def test_walker_contention_recorded_with_bounded_pool(self):
        config = _multi_config(count=4).with_overrides(iommu_walkers=1)
        result = simulate(config, _trace(tenants=8, packets=800, profile=KEYVALUE))
        assert result.fabric.walker_jobs > 0
        assert result.fabric.walker_total_queue_delay_ns > 0
        assert result.fabric.walker_mean_queue_delay_ns > 0
        assert sum(
            dev.walker_queue_delay_ns for dev in result.device_results
        ) == pytest.approx(result.fabric.walker_total_queue_delay_ns)

    def test_shared_iotlb_counters_sum_to_chipset(self):
        result = simulate(_multi_config(count=2), _trace())
        iotlb = result.cache_stats["iotlb"]
        demand_hits = sum(dev.iotlb_hits for dev in result.device_results)
        demand_misses = sum(dev.iotlb_misses for dev in result.device_results)
        # The chipset IOTLB also serves prefetch lookups, so per-device
        # demand counters can only account for a subset of its accesses.
        assert demand_hits <= iotlb.hits
        assert demand_misses <= iotlb.misses
        assert demand_hits + demand_misses > 0


class TestObservabilityDeviceLabel:
    def _events(self, config):
        obs = Observability.recording(sample_rate=1.0, seed=0)
        HyperSimulator(
            config, _trace(tenants=4, packets=300), observability=obs
        ).run()
        return obs.tracer.events

    def test_single_device_events_have_no_device_key(self):
        for event in self._events(hypertrio_config()):
            assert "device" not in (event.args or {})

    def test_multi_device_events_carry_device_label(self):
        events = self._events(_multi_config(count=2))
        assert events
        assert all("device" in (event.args or {}) for event in events)
        assert {event.args["device"] for event in events} == {0, 1}


class TestSerializeRoundTrip:
    def test_single_device_document_has_no_fabric_keys(self):
        document = result_to_dict(simulate(hypertrio_config(), _trace()))
        assert "device_results" not in document
        assert "fabric" not in document

    def test_multi_device_round_trip_is_exact(self):
        result = simulate(_multi_config(count=2), _trace())
        document = json.loads(json.dumps(result_to_dict(result)))
        restored = result_from_dict(document)
        assert restored == result
        assert isinstance(restored.device_results[0], DeviceResult)
        assert restored.fabric == result.fabric
