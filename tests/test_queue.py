"""The lease-based distributed experiment queue.

The guarantees under test (the ISSUE 9 acceptance set):

* **no double execution** — two workers draining one queue (1024 jobs,
  concurrent threads, separate SQLite connections) execute every job
  exactly once: claims are atomic claim-by-update transactions;
* **crash takeover with byte parity** — a worker that dies after
  claiming a real simulation job loses its lease, a survivor takes the
  claim over (audited, counted), and the final result is byte-identical
  to a single-host run that was never interrupted;
* **loud corruption** — a garbage-corrupted queue database raises
  :class:`~repro.runner.queue.QueueCorruptError` carrying the
  rebuild-from-store recipe, never a bare sqlite traceback — and the
  rebuild recipe actually works (re-enqueue + ``complete_memoized``
  restores a deleted queue without re-running anything);

plus the mechanics those rest on: hash-dedup'd enqueue, monotonic-safe
lease renewal, heartbeat-gated renewal (a wedged worker stops renewing),
the per-job claim budget (poison jobs are quarantined, not endlessly
re-claimed), per-attempt audit rows, and per-worker fleet counters.
"""

import json
import sqlite3
import threading
import time

import pytest

from repro.analysis.scale import RunScale
from repro.core.config import hypertrio_config
from repro.faults import chaos
from repro.runner import (
    ExperimentRunner,
    ExperimentQueue,
    JobSpec,
    QueueCorruptError,
    QueueError,
    ResultStore,
    RunnerOptions,
    work_queue,
)
from repro.runner.queue import LeaseRenewer, QUEUE_SCHEMA
from repro.runner.supervise import HeartbeatWriter

from tests.test_chaos import record_bytes
from tests.test_runner import make_spec


#: A small but real simulation point (16 tenants, 4000 packets) — big
#: enough that takeover parity is meaningful, small enough for tier 1.
QUEUE_SCALE = RunScale(
    name="queue",
    tenant_counts=(16,),
    interleavings=("RR1",),
    benchmarks=("mediastream",),
    max_packets=50_000,
    packets_per_tenant=15_000,
    warmup_fraction=0.25,
)


def sim_spec(seed=0):
    return JobSpec.from_point(
        hypertrio_config(), "mediastream", 16, "RR1", QUEUE_SCALE, seed=seed
    )


# ----------------------------------------------------------------------
# Enqueue, claim, and terminal-state mechanics
# ----------------------------------------------------------------------

class TestQueueBasics:
    def test_enqueue_dedups_by_spec_hash(self, tmp_path):
        queue = ExperimentQueue(tmp_path / "q.db", worker_id="w1")
        spec = make_spec(seed=1)
        assert queue.enqueue(spec) is True
        assert queue.enqueue(spec) is False  # same hash: idempotent
        assert queue.enqueue_specs([spec, make_spec(seed=2)]) == 1
        assert queue.counts() == {"pending": 2}
        assert queue.unfinished() == 2

    def test_claim_then_done_lifecycle(self, tmp_path):
        queue = ExperimentQueue(tmp_path / "q.db", worker_id="w1", lease_s=30)
        first, second = make_spec(seed=1), make_spec(seed=2)
        queue.enqueue_specs([first, second])
        job = queue.claim()
        assert job.spec_hash == first.spec_hash  # enqueue order
        assert job.attempts == 1 and not job.takeover
        assert queue.counts() == {"claimed": 1, "pending": 1}
        row = queue.jobs(status="claimed")[0]
        assert row["claimed_by"] == "w1"
        assert row["lease_expires_at"] > time.time() + 20
        assert queue.mark_done(job.spec_hash) is True
        assert queue.mark_done(job.spec_hash) is False  # already terminal
        assert queue.counts() == {"done": 1, "pending": 1}

    def test_mark_failed_records_error(self, tmp_path):
        queue = ExperimentQueue(tmp_path / "q.db", worker_id="w1")
        queue.enqueue(make_spec(seed=1))
        job = queue.claim()
        queue.mark_failed(job.spec_hash, "ValueError: boom")
        row = queue.jobs(status="failed")[0]
        assert "boom" in row["error"]
        events = [a["event"] for a in queue.attempt_rows(job.spec_hash)]
        assert events == ["claimed", "failed"]

    def test_release_returns_job_to_pending(self, tmp_path):
        queue = ExperimentQueue(tmp_path / "q.db", worker_id="w1")
        queue.enqueue(make_spec(seed=1))
        job = queue.claim()
        assert queue.release(job.spec_hash) is True
        assert queue.counts() == {"pending": 1}
        # Immediately claimable again, no lease wait.
        assert queue.claim() is not None

    def test_claim_returns_none_when_dry(self, tmp_path):
        queue = ExperimentQueue(tmp_path / "q.db", worker_id="w1")
        assert queue.claim() is None

    def test_live_lease_is_not_stealable(self, tmp_path):
        queue_a = ExperimentQueue(tmp_path / "q.db", worker_id="a", lease_s=60)
        queue_b = ExperimentQueue(tmp_path / "q.db", worker_id="b")
        queue_a.enqueue(make_spec(seed=1))
        assert queue_a.claim() is not None
        assert queue_b.claim() is None  # lease still live

    def test_schema_tag_present(self, tmp_path):
        queue = ExperimentQueue(tmp_path / "q.db")
        assert queue.summary()["schema"] == QUEUE_SCHEMA


# ----------------------------------------------------------------------
# Lease expiry, takeover, renewal
# ----------------------------------------------------------------------

class TestLeases:
    def test_expired_lease_is_taken_over_with_audit(self, tmp_path):
        queue_a = ExperimentQueue(tmp_path / "q.db", worker_id="a")
        queue_b = ExperimentQueue(tmp_path / "q.db", worker_id="b")
        spec = make_spec(seed=1)
        queue_a.enqueue(spec)
        assert queue_a.claim() is not None
        assert chaos.steal_lease(queue_a, spec.spec_hash) is True

        job = queue_b.claim()
        assert job is not None and job.takeover
        assert job.taken_from == "a"
        assert job.attempts == 2
        events = [a["event"] for a in queue_b.attempt_rows(spec.spec_hash)]
        assert events == ["claimed", "takeover"]
        workers = queue_b.summary()["workers"]
        assert workers["a"]["claims"] == 1 and workers["a"]["takeovers"] == 0
        assert workers["b"]["claims"] == 1 and workers["b"]["takeovers"] == 1

    def test_renew_extends_forward_only(self, tmp_path):
        queue = ExperimentQueue(tmp_path / "q.db", worker_id="a", lease_s=60)
        spec = make_spec(seed=1)
        queue.enqueue(spec)
        queue.claim()
        first = queue.jobs(status="claimed")[0]["lease_expires_at"]
        assert queue.renew(spec.spec_hash) is True
        second = queue.jobs(status="claimed")[0]["lease_expires_at"]
        # MAX(old, now + lease): never shrinks, even called back-to-back.
        assert second >= first

    def test_renew_fails_after_takeover(self, tmp_path):
        queue_a = ExperimentQueue(tmp_path / "q.db", worker_id="a")
        queue_b = ExperimentQueue(tmp_path / "q.db", worker_id="b")
        spec = make_spec(seed=1)
        queue_a.enqueue(spec)
        queue_a.claim()
        chaos.steal_lease(queue_a, spec.spec_hash)
        assert queue_b.claim().takeover
        assert queue_a.renew(spec.spec_hash) is False  # no longer ours

    def test_poison_job_is_quarantined_after_claim_budget(self, tmp_path):
        queue = ExperimentQueue(
            tmp_path / "q.db", worker_id="a", max_claims=2
        )
        spec = make_spec(seed=1)
        queue.enqueue(spec)
        for _ in range(2):
            assert queue.claim() is not None
            chaos.steal_lease(queue, spec.spec_hash)
        assert queue.claim() is None  # budget burned -> quarantined, not given out
        assert queue.counts() == {"quarantined": 1}
        row = queue.jobs(status="quarantined")[0]
        assert "max_claims" in row["error"]
        assert queue.attempt_rows(spec.spec_hash)[-1]["event"] == "quarantined"

    def test_renewer_renews_until_stopped(self, tmp_path):
        queue = ExperimentQueue(tmp_path / "q.db", worker_id="a")
        spec = make_spec(seed=1)
        queue.enqueue(spec)
        queue.claim()
        renewer = LeaseRenewer(queue, [spec.spec_hash])
        renewer.renew_once()
        renewer.renew_once()
        assert renewer.renewals == 2
        assert queue.summary()["workers"]["a"]["renewals"] == 2

    def test_renewer_reports_lost_claims(self, tmp_path):
        queue_a = ExperimentQueue(tmp_path / "q.db", worker_id="a")
        queue_b = ExperimentQueue(tmp_path / "q.db", worker_id="b")
        spec = make_spec(seed=1)
        queue_a.enqueue(spec)
        queue_a.claim()
        chaos.steal_lease(queue_a, spec.spec_hash)
        queue_b.claim()
        lost = []
        renewer = LeaseRenewer(queue_a, [spec.spec_hash], on_lost=lost.append)
        renewer.renew_once()
        assert lost == [spec.spec_hash]
        assert renewer.lost == [spec.spec_hash]

    def test_renewer_is_gated_on_heartbeat_progress(self, tmp_path):
        """A job whose supervision heartbeat stops advancing stops being
        renewed — the renewer anchors the last-seen heartbeat value to
        its *own* monotonic clock (same discipline as the watchdog)."""
        queue = ExperimentQueue(tmp_path / "q.db", worker_id="a")
        spec = make_spec(seed=1)
        queue.enqueue(spec)
        queue.claim()
        writer = HeartbeatWriter(tmp_path, spec.spec_hash)
        writer.path.parent.mkdir(parents=True, exist_ok=True)
        writer.write()
        renewer = LeaseRenewer(
            queue, [spec.spec_hash], run_dir=tmp_path, stale_after_s=-1.0
        )
        renewer.renew_once()  # first observation anchors: renews
        assert renewer.renewals == 1
        renewer.renew_once()  # unchanged beyond stale_after_s: skipped
        assert renewer.renewals == 1
        writer.write()  # heartbeat advances
        renewer.renew_once()
        assert renewer.renewals == 2

    def test_renewer_without_heartbeat_keeps_renewing(self, tmp_path):
        """No heartbeat record (stub jobs, between attempts) is not
        evidence of a wedge — the renewer's own liveness is the signal."""
        queue = ExperimentQueue(tmp_path / "q.db", worker_id="a")
        spec = make_spec(seed=1)
        queue.enqueue(spec)
        queue.claim()
        renewer = LeaseRenewer(
            queue, [spec.spec_hash], run_dir=tmp_path, stale_after_s=-1.0
        )
        renewer.renew_once()
        renewer.renew_once()
        assert renewer.renewals == 2


# ----------------------------------------------------------------------
# (a) Two concurrent workers never double-execute a claim
# ----------------------------------------------------------------------

class TestNoDoubleExecution:
    def test_1024_jobs_two_workers_every_job_executes_once(self, tmp_path):
        specs = [make_spec(seed=seed) for seed in range(1024)]
        seed_queue = ExperimentQueue(tmp_path / "q.db", worker_id="seed")
        assert seed_queue.enqueue_specs(specs) == 1024
        seed_queue.close()

        executions = []
        log_lock = threading.Lock()

        def make_worker(name):
            def job_fn(spec):
                with log_lock:
                    executions.append((name, spec.spec_hash))
                return {"result": {"seed": spec.seed}}

            queue = ExperimentQueue(
                tmp_path / "q.db", worker_id=name, lease_s=60
            )
            runner = ExperimentRunner(
                options=RunnerOptions(jobs=1), job_fn=job_fn
            )
            stats_box = {}

            def drain():
                stats_box["stats"] = work_queue(
                    queue, runner, poll_s=0.01, poll_max_s=0.05
                )
                queue.close()

            return threading.Thread(target=drain), stats_box

        thread_a, box_a = make_worker("worker-a")
        thread_b, box_b = make_worker("worker-b")
        thread_a.start()
        thread_b.start()
        thread_a.join(timeout=120)
        thread_b.join(timeout=120)
        assert not thread_a.is_alive() and not thread_b.is_alive()

        executed_hashes = [h for _, h in executions]
        assert len(executed_hashes) == 1024  # nothing ran twice
        assert len(set(executed_hashes)) == 1024
        assert set(executed_hashes) == {s.spec_hash for s in specs}

        verify = ExperimentQueue(tmp_path / "q.db", worker_id="verify")
        assert verify.counts() == {"done": 1024}
        stats_a, stats_b = box_a["stats"], box_b["stats"]
        assert stats_a.claims + stats_b.claims == 1024
        assert stats_a.done + stats_b.done == 1024
        # Both workers genuinely participated.
        assert stats_a.executed > 0 and stats_b.executed > 0

    def test_concurrent_claim_hammering_yields_unique_claims(self, tmp_path):
        """Raw claim() races (no runner): N threads x one DB, every claim
        handed out exactly once."""
        specs = [make_spec(seed=seed) for seed in range(64)]
        seed_queue = ExperimentQueue(tmp_path / "q.db", worker_id="seed")
        seed_queue.enqueue_specs(specs)
        seed_queue.close()
        claimed = []
        lock = threading.Lock()

        def hammer(name):
            queue = ExperimentQueue(tmp_path / "q.db", worker_id=name)
            while True:
                job = queue.claim()
                if job is None:
                    break
                with lock:
                    claimed.append(job.spec_hash)
            queue.close()

        threads = [
            threading.Thread(target=hammer, args=(f"w{i}",)) for i in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert sorted(claimed) == sorted(s.spec_hash for s in specs)


# ----------------------------------------------------------------------
# (b) Killed worker -> lease expiry -> takeover -> byte-identical result
# ----------------------------------------------------------------------

class TestTakeoverParity:
    def test_dead_claimers_jobs_reclaimed_byte_identical(self, tmp_path):
        """Worker A claims a real simulation job and dies (its claim is
        force-expired, which is what its lease looks like after the
        SIGKILL in the queue-chaos CI job).  Worker B takes the job
        over; the merged result set is byte-identical to a single-host
        run that never saw a failure."""
        spec = sim_spec()
        clean_store = ResultStore(tmp_path / "clean-runs", "clean")
        clean = ExperimentRunner(
            store=clean_store, options=RunnerOptions(jobs=1)
        ).run([spec])[0]
        assert clean.ok

        queue_a = ExperimentQueue(tmp_path / "q.db", worker_id="a", lease_s=60)
        queue_a.enqueue(spec)
        assert queue_a.claim() is not None  # A dies here, mid-lease
        chaos.steal_lease(queue_a, spec.spec_hash)

        queue_b = ExperimentQueue(tmp_path / "q.db", worker_id="b", lease_s=60)
        store_b = ResultStore(tmp_path / "runs", "queue")
        runner_b = ExperimentRunner(
            store=store_b, options=RunnerOptions(jobs=1)
        )
        stats = work_queue(queue_b, runner_b, poll_s=0.01)
        assert stats.takeovers == 1
        assert stats.executed == 1 and stats.done == 1
        assert queue_b.counts() == {"done": 1}

        survivor = store_b.get(spec.spec_hash)
        assert record_bytes(survivor) == record_bytes(clean)
        assert queue_b.summary()["workers"]["b"]["takeovers"] == 1

    def test_memo_hit_answers_claim_without_executing(self, tmp_path):
        """A claim whose result already sits in the (refreshed) store —
        another worker finished it just before dying — is marked done
        from the store, never re-executed: memoization parity."""
        spec = make_spec(seed=1)
        store = ResultStore(tmp_path / "runs", "memo")
        runner = ExperimentRunner(
            store=store, options=RunnerOptions(jobs=1),
            job_fn=lambda s: {"result": {"seed": s.seed}},
        )
        runner.run([spec])  # result is now durable

        queue = ExperimentQueue(tmp_path / "q.db", worker_id="b")
        queue.enqueue(spec)

        def forbidden(s):
            raise AssertionError("memoized job must not re-execute")

        fresh_store = ResultStore(tmp_path / "runs", "memo")
        stats = work_queue(
            queue,
            ExperimentRunner(
                store=fresh_store, options=RunnerOptions(jobs=1),
                job_fn=forbidden,
            ),
            poll_s=0.01,
        )
        assert stats.memo_hits == 1 and stats.executed == 0
        assert queue.counts() == {"done": 1}
        events = [a["event"] for a in queue.attempt_rows(spec.spec_hash)]
        assert events == ["claimed", "done"]
        assert queue.attempt_rows(spec.spec_hash)[-1]["detail"] == (
            "memoized from store"
        )

    def test_failed_jobs_reach_terminal_failed_state(self, tmp_path):
        def poison(spec):
            raise ValueError("deterministic poison")

        queue = ExperimentQueue(tmp_path / "q.db", worker_id="a")
        queue.enqueue_specs([make_spec(seed=1), make_spec(seed=2)])
        store = ResultStore(tmp_path / "runs", "fail")
        runner = ExperimentRunner(
            store=store, options=RunnerOptions(jobs=1, backoff_s=0.01),
            job_fn=poison,
        )
        stats = work_queue(queue, runner, poll_s=0.01)
        assert stats.failed == 2 and stats.done == 0
        assert queue.counts() == {"failed": 2}
        assert "poison" in queue.jobs(status="failed")[0]["error"]


# ----------------------------------------------------------------------
# (c) Corruption fails loudly; the rebuild recipe works
# ----------------------------------------------------------------------

class TestCorruptionAndRebuild:
    def test_corrupt_db_raises_queue_corrupt_error_with_rebuild_hint(
        self, tmp_path
    ):
        path = tmp_path / "q.db"
        queue = ExperimentQueue(path, worker_id="a")
        queue.enqueue(make_spec(seed=1))
        queue.close()
        chaos.corrupt_queue_db(path)
        with pytest.raises(QueueCorruptError) as excinfo:
            ExperimentQueue(path, worker_id="a")
        message = str(excinfo.value)
        assert "Rebuild" in message
        assert "repro-sim run --queue" in message
        assert "results.jsonl" in message
        # Typed, catchable — not a bare sqlite traceback.
        assert isinstance(excinfo.value, QueueError)
        assert not isinstance(excinfo.value, sqlite3.Error)

    def test_rebuild_from_store_marks_finished_points_done(self, tmp_path):
        """The recipe in the error message, executed: delete the queue,
        re-enqueue the plan, complete from the store — nothing re-runs."""
        specs = [make_spec(seed=seed) for seed in range(6)]
        store = ResultStore(tmp_path / "runs", "rebuild")
        runner = ExperimentRunner(
            store=store, options=RunnerOptions(jobs=1),
            job_fn=lambda s: {"result": {"seed": s.seed}},
        )
        runner.run(specs[:4])  # 4 of 6 finished before the db was lost

        path = tmp_path / "q.db"
        queue = ExperimentQueue(path, worker_id="a")
        queue.enqueue_specs(specs)
        done = queue.complete_memoized(
            [s.spec_hash for s in specs if store.get(s.spec_hash)]
        )
        assert done == 4
        assert queue.counts() == {"done": 4, "pending": 2}

        executed = []
        stats = work_queue(
            queue,
            ExperimentRunner(
                store=store, options=RunnerOptions(jobs=1),
                job_fn=lambda s: (
                    executed.append(s.spec_hash) or {"result": {"seed": s.seed}}
                ),
            ),
            poll_s=0.01,
        )
        assert stats.executed == 2  # only the genuinely missing points
        assert len(executed) == 2
        assert queue.counts() == {"done": 6}

    def test_complete_memoized_leaves_live_claims_alone(self, tmp_path):
        queue_a = ExperimentQueue(tmp_path / "q.db", worker_id="a")
        queue_b = ExperimentQueue(tmp_path / "q.db", worker_id="b")
        spec = make_spec(seed=1)
        queue_a.enqueue(spec)
        queue_a.claim()
        assert queue_b.complete_memoized([spec.spec_hash]) == 0
        assert queue_b.counts() == {"claimed": 1}


# ----------------------------------------------------------------------
# Fleet view
# ----------------------------------------------------------------------

class TestQueueObservability:
    def test_queue_registry_exports_counts_and_worker_counters(self, tmp_path):
        from repro.obs.fleet import queue_registry

        queue_a = ExperimentQueue(tmp_path / "q.db", worker_id="a", lease_s=60)
        specs = [make_spec(seed=seed) for seed in range(3)]
        queue_a.enqueue_specs(specs)
        job = queue_a.claim()
        queue_a.mark_done(job.spec_hash)
        queue_a.claim()  # leave one claimed with a live lease

        registry = queue_registry(tmp_path / "q.db")
        assert registry.gauge("queue_jobs", status="pending").value == 1
        assert registry.gauge("queue_jobs", status="claimed").value == 1
        assert registry.gauge("queue_jobs", status="done").value == 1
        assert registry.gauge("queue_worker_claims", worker="a").value == 2
        assert registry.gauge("queue_worker_done", worker="a").value == 1
        leases = [
            row for row in registry.snapshot()["gauges"]
            if row["name"] == "queue_lease_remaining_s"
        ]
        assert len(leases) == 1
        assert 0 < leases[0]["value"] <= 60

    def test_manifest_summary_shape(self, tmp_path):
        queue = ExperimentQueue(tmp_path / "q.db", worker_id="host:1")
        queue.enqueue(make_spec(seed=1))
        job = queue.claim()
        queue.mark_done(job.spec_hash)
        summary = queue.summary()
        assert summary["counts"] == {"done": 1}
        assert summary["workers"]["host:1"] == {
            "claims": 1, "takeovers": 0, "renewals": 0, "done": 1, "failed": 0,
        }
        json.dumps(summary)  # manifest-ready
