"""Tests for multi-seed replication."""

import pytest

from repro.analysis.replication import ReplicatedPoint, replicate
from repro.analysis.sweeps import clear_trace_cache
from repro.core.config import base_config


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_trace_cache()
    yield
    clear_trace_cache()


class TestReplicatedPoint:
    def test_statistics(self):
        point = ReplicatedPoint(
            config_name="Base",
            benchmark="iperf3",
            num_tenants=4,
            interleaving="RR1",
            seeds=(0, 1, 2),
            utilizations=(0.8, 0.9, 1.0),
        )
        assert point.mean_utilization == pytest.approx(0.9)
        assert point.std_utilization == pytest.approx(0.1)
        assert point.min_utilization == 0.8
        assert point.max_utilization == 1.0

    def test_single_seed_std_is_zero(self):
        point = ReplicatedPoint(
            config_name="Base", benchmark="iperf3", num_tenants=4,
            interleaving="RR1", seeds=(0,), utilizations=(0.5,),
        )
        assert point.std_utilization == 0.0

    def test_describe(self):
        point = ReplicatedPoint(
            config_name="Base", benchmark="iperf3", num_tenants=4,
            interleaving="RR1", seeds=(0, 1), utilizations=(0.5, 0.7),
        )
        assert "n=2" in point.describe()


class TestReplicate:
    def test_runs_every_seed(self, tiny_scale):
        point = replicate(
            base_config(), "mediastream", 2, "RR1", tiny_scale,
            seeds=(0, 1, 2),
        )
        assert len(point.utilizations) == 3
        assert all(0.0 <= u <= 1.0 for u in point.utilizations)

    def test_deterministic_benchmark_has_low_spread(self, tiny_scale):
        """iperf3 is seed-independent (no jumps, fixed sizes), so the
        spread across seeds must be tiny."""
        point = replicate(
            base_config(), "iperf3", 2, "RR1", tiny_scale, seeds=(0, 1, 2),
        )
        assert point.std_utilization < 0.02

    def test_rand_interleaving_varies_across_seeds(self, tiny_scale):
        point = replicate(
            base_config(), "mediastream", 8, "RAND1", tiny_scale,
            seeds=(0, 1, 2, 3),
        )
        # RAND traces differ per seed; utilisations need not be equal.
        assert len(set(point.utilizations)) >= 1  # smoke: no crash
        assert point.max_utilization >= point.min_utilization

    def test_empty_seeds_rejected(self, tiny_scale):
        with pytest.raises(ValueError):
            replicate(base_config(), "iperf3", 2, "RR1", tiny_scale, seeds=())
