"""Chaos tests: the runner under killed workers and a torn result store.

``tests/test_faults.py`` proves injected *simulation* faults are
deterministic; this module attacks the infrastructure around the
simulator instead.  Worker processes are hard-killed mid-job
(:func:`repro.faults.chaos.kill_worker_once`) and the persistent result
store's JSONL file is torn and corrupted the way real crashes tear it.
The guarantees under test:

* a run whose workers die mid-job still completes (the scheduler
  retries infrastructure failures and restarts the pool);
* a *poison* job — one that deterministically raises — fails fast
  instead of burning the retry budget;
* a corrupt ``results.jsonl`` degrades to its valid prefix: bad records
  are quarantined with line numbers, the store keeps every record before
  (and after) the damage, and subsequent appends/reloads are clean;
* **kill/resume parity**: a worker SIGKILLed *mid-simulation* — after a
  checkpoint landed but long before completion — produces, once resumed,
  a result record byte-identical to an uninterrupted run's.  Pinned for
  the supervised runner (analytic engine) and for a raw subprocess on
  both engines, under a non-trivial fault plan.
"""

import json
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.core.config import hypertrio_config
from repro.analysis.scale import RunScale
from repro.faults import chaos
from repro.runner import (
    ExperimentRunner,
    JobResult,
    JobSpec,
    ResultStore,
    RunnerOptions,
    SupervisionOptions,
    read_heartbeat,
)
from repro.runner.serialize import result_to_dict
from repro.runner.supervise import checkpoint_path_for

from tests import checkpoint_driver, runner_stubs
from tests.test_runner import make_spec


@pytest.fixture
def chaos_dir(tmp_path, monkeypatch):
    directory = tmp_path / "chaos-markers"
    directory.mkdir()
    monkeypatch.setenv(chaos.CHAOS_DIR_ENV, str(directory))
    return directory


# ----------------------------------------------------------------------
# Killed workers
# ----------------------------------------------------------------------

class TestKilledWorkers:
    def test_run_completes_after_worker_kills(self, chaos_dir, tmp_path):
        specs = [make_spec(seed=1), make_spec(seed=2)]
        store = ResultStore(tmp_path / "runs", "chaos")
        runner = ExperimentRunner(
            store=store,
            options=RunnerOptions(
                jobs=2, max_attempts=3, max_pool_restarts=8, backoff_s=0.01
            ),
            job_fn=chaos.kill_worker_once,
        )
        results = runner.run(specs)
        assert all(result.ok for result in results)
        # Every spec's first attempt died with the worker.
        markers = sorted(p.name for p in chaos_dir.iterdir())
        assert markers == sorted(
            f"killed-{spec.spec_hash}" for spec in specs
        )
        assert runner.stats.retried >= len(specs)
        # Completions were persisted despite the carnage.
        reloaded = ResultStore(tmp_path / "runs", "chaos")
        assert reloaded.completed_count == len(specs)
        assert not reloaded.corrupt_records

    def test_kill_refuses_to_take_down_orchestrator(self, chaos_dir):
        with pytest.raises(chaos.ChaosConfigError, match="refusing"):
            chaos.kill_worker_once(make_spec(seed=9))

    def test_kill_requires_marker_directory(self, monkeypatch):
        monkeypatch.delenv(chaos.CHAOS_DIR_ENV, raising=False)
        with pytest.raises(chaos.ChaosConfigError, match=chaos.CHAOS_DIR_ENV):
            chaos.kill_worker_once(make_spec(seed=9))


# ----------------------------------------------------------------------
# Poison jobs fail fast; infrastructure failures keep their budget
# ----------------------------------------------------------------------

class TestPoisonJobs:
    @pytest.mark.parametrize("jobs", [1, 2])
    def test_deterministic_failure_fails_fast(self, jobs):
        runner = ExperimentRunner(
            options=RunnerOptions(jobs=jobs, max_attempts=3, backoff_s=0.01),
            job_fn=runner_stubs.failing_job,
        )
        result = runner.run([make_spec(seed=4)])[0]
        assert result.status == "failed"
        assert result.attempts == 1
        assert runner.stats.retried == 0

    def test_job_error_attempts_raises_the_budget(self):
        runner = ExperimentRunner(
            options=RunnerOptions(
                jobs=1, max_attempts=1, job_error_attempts=3, backoff_s=0.01
            ),
            job_fn=runner_stubs.failing_job,
        )
        result = runner.run([make_spec(seed=4)])[0]
        assert result.status == "failed"
        assert result.attempts == 3
        assert runner.stats.retried == 2


# ----------------------------------------------------------------------
# Result-store corruption recovery
# ----------------------------------------------------------------------

def _ok_record(seed):
    spec = make_spec(seed=seed)
    return JobResult(
        spec_hash=spec.spec_hash,
        status="ok",
        spec=spec.to_dict(),
        result={"seed": seed},
    )


def _store_with_records(tmp_path, seeds):
    store = ResultStore(tmp_path / "runs", "torn")
    for seed in seeds:
        store.record(_ok_record(seed))
    return store


class TestStoreCorruptionRecovery:
    def test_truncated_last_line_recovers_valid_prefix(self, tmp_path):
        store = _store_with_records(tmp_path, [1, 2, 3])
        removed = chaos.truncate_last_line(store.results_path)
        assert removed > 0

        recovered = ResultStore(tmp_path / "runs", "torn")
        assert recovered.completed_count == 2
        assert len(recovered.corrupt_records) == 1
        assert recovered.corrupt_records[0]["line"] == 3
        # The quarantine report names the damage.
        entries = [
            json.loads(line)
            for line in recovered.quarantine_path.read_text().splitlines()
        ]
        assert len(entries) == 1
        assert entries[0]["line"] == 3
        assert entries[0]["raw"]

        # The rewritten file is clean: appends and reloads work.
        recovered.record(_ok_record(4))
        final = ResultStore(tmp_path / "runs", "torn")
        assert final.completed_count == 3
        assert not final.corrupt_records

    def test_garbage_mid_file_keeps_records_on_both_sides(self, tmp_path):
        store = _store_with_records(tmp_path, [1, 2])
        chaos.insert_garbage_line(store.results_path, after_line=1)

        recovered = ResultStore(tmp_path / "runs", "torn")
        assert recovered.completed_count == 2
        assert len(recovered.corrupt_records) == 1
        assert recovered.corrupt_records[0]["line"] == 2
        # Both real records survive on either side of the garbage.
        hashes = {r.spec_hash for r in recovered.iter_completed()}
        assert hashes == {make_spec(seed=1).spec_hash,
                          make_spec(seed=2).spec_hash}

    def test_empty_results_file_is_not_corruption(self, tmp_path):
        store = _store_with_records(tmp_path, [])
        store.results_path.write_text("", encoding="utf-8")
        recovered = ResultStore(tmp_path / "runs", "torn")
        assert recovered.completed_count == 0
        assert not recovered.corrupt_records
        assert not recovered.quarantine_path.exists()

    def test_resume_after_truncation_reexecutes_only_the_torn_job(
        self, tmp_path
    ):
        specs = [make_spec(seed=1), make_spec(seed=2), make_spec(seed=3)]
        store = ResultStore(tmp_path / "runs", "resume")
        runner = ExperimentRunner(
            store=store, options=RunnerOptions(jobs=1),
            job_fn=runner_stubs.ok_job,
        )
        assert all(r.ok for r in runner.run(specs))
        chaos.truncate_last_line(store.results_path)

        resumed_store = ResultStore(tmp_path / "runs", "resume")
        assert resumed_store.completed_count == 2
        runner = ExperimentRunner(
            store=resumed_store, options=RunnerOptions(jobs=1),
            job_fn=runner_stubs.ok_job,
        )
        results = runner.run(specs)
        assert all(r.ok for r in results)
        assert runner.stats.cached == 2
        assert runner.stats.executed == 1
        assert ResultStore(tmp_path / "runs", "resume").completed_count == 3


# ----------------------------------------------------------------------
# Kill/resume parity: SIGKILL mid-simulation, resume, identical bytes
# ----------------------------------------------------------------------

# ``RunScale.packets_for`` sizes a point at ``max(4000, 16 x tenants)``
# packets, so tenant count is the only lever that makes a runner job
# long enough to kill mid-flight: 512 tenants -> 8192 packets, a
# multi-second simulation with several checkpoint barriers.
CHAOS_SCALE = RunScale(
    name="chaos",
    tenant_counts=(512,),
    interleavings=("RR1",),
    benchmarks=("mediastream",),
    max_packets=200_000,
    packets_per_tenant=60_000,
    warmup_fraction=0.25,
)


def chaos_spec(seed=3):
    """One real, multi-second simulation job under a non-trivial plan."""
    return JobSpec.from_point(
        hypertrio_config(), "mediastream", 512, "RR1", CHAOS_SCALE,
        seed=seed, fault_plan=checkpoint_driver.build_fault_plan(),
    )


def record_bytes(result: JobResult) -> bytes:
    """Canonical bytes of a record's result payload.

    The JSON round-trip applies the durable store's key normalisation
    (int dict keys become strings), so in-memory and reloaded records
    serialise identically when — and only when — their contents match.
    """
    dumped = json.dumps(result.result, sort_keys=True)
    return json.dumps(json.loads(dumped), sort_keys=True).encode()


class TestKillResumeParity:
    @pytest.mark.slow
    def test_sigkilled_runner_job_resumes_byte_identical(self, tmp_path):
        """SIGKILL a supervised worker after its first checkpoint lands;
        the scheduler requeues the job, the retry resumes mid-simulation
        from the snapshot, and the final record is byte-identical to a
        run that was never touched."""
        spec = chaos_spec()

        clean_store = ResultStore(tmp_path / "runs", "clean")
        clean = ExperimentRunner(
            store=clean_store, options=RunnerOptions(jobs=2)
        ).run([spec])[0]
        assert clean.ok

        chaos_store = ResultStore(tmp_path / "runs", "chaos")
        run_dir = chaos_store.directory
        ckpt_path = checkpoint_path_for(run_dir, spec.spec_hash)
        killed = threading.Event()
        give_up = time.monotonic() + 60.0

        def assassin():
            while not killed.is_set() and time.monotonic() < give_up:
                if ckpt_path.exists():
                    beat = read_heartbeat(run_dir, spec.spec_hash)
                    if beat and beat.get("status") == "running":
                        try:
                            os.kill(beat["pid"], signal.SIGKILL)
                        except (OSError, KeyError):
                            pass
                        killed.set()
                        return
                time.sleep(0.005)

        thread = threading.Thread(target=assassin, daemon=True)
        thread.start()
        runner = ExperimentRunner(
            store=chaos_store,
            options=RunnerOptions(
                jobs=2, max_attempts=3, max_pool_restarts=8, backoff_s=0.05
            ),
            supervision=SupervisionOptions(checkpoint_every=1_000),
        )
        result = runner.run([spec])[0]
        thread.join(timeout=5.0)

        assert killed.is_set(), "worker finished before the kill — grow the job"
        assert result.ok
        assert runner.stats.retried >= 1
        assert record_bytes(result) == record_bytes(clean)
        # The snapshot was consumed by the successful resume.
        assert not ckpt_path.exists()
        # The durable record matches too (what 'run --resume' would read).
        reloaded = ResultStore(tmp_path / "runs", "chaos").get(spec.spec_hash)
        assert record_bytes(reloaded) == record_bytes(clean)

    @pytest.mark.slow
    @pytest.mark.parametrize("engine,packets,every", [
        ("analytic", 150_000, 5_000),
        ("event", 100_000, 5_000),
    ])
    def test_sigkilled_process_resumes_byte_identical(
        self, engine, packets, every, tmp_path
    ):
        """Raw-engine twin of the runner test, covering the DES engine
        too: SIGKILL the whole simulating process (no pool, no signal
        grace), then resume from its last snapshot."""
        reference = json.dumps(
            result_to_dict(checkpoint_driver.run_clean(engine, packets)),
            sort_keys=True,
        )
        ckpt_path = tmp_path / "driver.ckpt"
        out_path = tmp_path / "result.json"
        repo_root = Path(__file__).parent.parent
        env = dict(os.environ, PYTHONPATH=str(repo_root / "src"))
        argv = [
            sys.executable, "-m", "tests.checkpoint_driver",
            "--engine", engine, "--packets", str(packets),
            "--checkpoint-every", str(every),
            "--checkpoint-path", str(ckpt_path), "--out", str(out_path),
        ]
        proc = subprocess.Popen(argv, cwd=repo_root, env=env)
        deadline = time.monotonic() + 60.0
        while not ckpt_path.exists():
            assert proc.poll() is None, "driver finished before checkpointing"
            assert time.monotonic() < deadline, "no checkpoint appeared"
            time.sleep(0.005)
        proc.kill()  # SIGKILL: no handler, no flush, no goodbye
        proc.wait(timeout=30)
        assert not out_path.exists()

        resumed = subprocess.run(
            argv + ["--resume"], cwd=repo_root, env=env, timeout=300,
        )
        assert resumed.returncode == 0
        assert out_path.read_text(encoding="utf-8") == reference


# ----------------------------------------------------------------------
# Concurrent schedulers sharing one results.jsonl (distributed queue)
# ----------------------------------------------------------------------

class TestConcurrentStores:
    def test_two_schedulers_interleave_appends_losslessly(self, tmp_path):
        """Two cooperating queue workers append to the *same*
        ``results.jsonl`` (here: two store instances racing from two
        threads).  The sidecar file lock serializes whole-record
        appends, so the merged file holds every record, one per line —
        no torn, interleaved, or lost records."""
        per_writer = 150
        barrier = threading.Barrier(2)
        failures = []

        def writer(offset):
            try:
                store = ResultStore(tmp_path / "runs", "shared")
                barrier.wait(timeout=30)
                for index in range(per_writer):
                    store.record(_ok_record(offset + index))
            except BaseException as error:  # pragma: no cover — diagnostics
                failures.append(error)

        threads = [
            threading.Thread(target=writer, args=(offset,))
            for offset in (0, 10_000)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert not failures
        assert not any(thread.is_alive() for thread in threads)

        merged = ResultStore(tmp_path / "runs", "shared")
        assert merged.completed_count == 2 * per_writer
        assert not merged.corrupt_records
        lines = merged.results_path.read_text(
            encoding="utf-8"
        ).splitlines()
        assert len(lines) == 2 * per_writer
        assert all(json.loads(line)["status"] == "ok" for line in lines)
        expected = {
            make_spec(seed=offset + index).spec_hash
            for offset in (0, 10_000)
            for index in range(per_writer)
        }
        assert {r.spec_hash for r in merged.iter_completed()} == expected

    def test_refresh_folds_in_other_writers_records(self, tmp_path):
        """A store instance sees records another instance appended after
        it loaded — the queue worker's pre-execution memo check."""
        ours = ResultStore(tmp_path / "runs", "shared")
        theirs = ResultStore(tmp_path / "runs", "shared")
        theirs.record(_ok_record(1))
        spec_hash = make_spec(seed=1).spec_hash
        assert ours.get(spec_hash) is None  # loaded before the append
        assert ours.refresh() == 1
        assert ours.get(spec_hash) is not None
        assert ours.refresh() == 0  # idempotent: nothing new

    def test_append_after_foreign_torn_tail_stays_isolated(self, tmp_path):
        """A crashed foreign writer's torn (unterminated) tail does not
        merge with our next append: the new record starts on its own
        line and only the torn fragment is quarantined on reload."""
        store = _store_with_records(tmp_path, [1, 2])
        with store.results_path.open("ab") as handle:
            handle.write(b'{"status": "ok", "spec_hash": "to')  # no newline
        store.record(_ok_record(3))

        recovered = ResultStore(tmp_path / "runs", "torn")
        assert recovered.completed_count == 3
        assert len(recovered.corrupt_records) == 1
        assert recovered.get(make_spec(seed=3).spec_hash) is not None
