"""Shared fixtures for the test suite."""

import pytest

from repro.analysis.scale import RunScale
from repro.core.config import base_config, hypertrio_config
from repro.mem.allocator import FrameAllocator
from repro.mem.pagetable import AddressSpace
from repro.trace.constructor import construct_trace
from repro.trace.tenant import IPERF3, MEDIASTREAM


@pytest.fixture
def host_allocator():
    return FrameAllocator(base=0x10_0000_0000)


@pytest.fixture
def guest_allocator():
    return FrameAllocator(base=0x4000_0000)


@pytest.fixture
def address_space(guest_allocator, host_allocator):
    return AddressSpace(guest_allocator, host_allocator, name="test")


@pytest.fixture
def tiny_scale():
    """A very small run scale for integration tests."""
    return RunScale(
        name="test",
        tenant_counts=(2, 8),
        interleavings=("RR1",),
        benchmarks=("mediastream",),
        max_packets=900,
        packets_per_tenant=50_000,
        warmup_fraction=0.2,
    )


@pytest.fixture
def small_trace():
    """A small but realistic mediastream trace (4 tenants)."""
    return construct_trace(
        MEDIASTREAM,
        num_tenants=4,
        packets_per_tenant=50_000,
        interleaving="RR1",
        max_packets=600,
    )


@pytest.fixture
def iperf_trace():
    return construct_trace(
        IPERF3,
        num_tenants=2,
        packets_per_tenant=50_000,
        interleaving="RR1",
        max_packets=400,
    )


@pytest.fixture
def base_cfg():
    return base_config()


@pytest.fixture
def hyper_cfg():
    return hypertrio_config()
