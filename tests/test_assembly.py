"""Tests for the translation-path assembly and result records."""

import pytest

from repro.cache.partitioned import PartitionedCache
from repro.cache.setassoc import FullyAssociativeCache, SetAssociativeCache
from repro.core.config import TlbConfig, base_config, hypertrio_config
from repro.core.hypertrio import build_translation_path
from repro.core.results import RequestLatencyStats, SimulationResult
from repro.core.ptb import PtbStats
from repro.device.packet import PacketStats
from repro.mem.dram import DramStats
from repro.cache.base import CacheStats


class _FakeWalker:
    def walk(self, giova):  # pragma: no cover - never called in these tests
        raise AssertionError("walker should not be invoked")


def _walker_for(sid):
    return _FakeWalker()


class TestBuildTranslationPath:
    def test_base_path_structure(self):
        path = build_translation_path(base_config(), _walker_for, sids=(0, 1))
        assert isinstance(path.devtlb, SetAssociativeCache)
        assert not isinstance(path.devtlb, PartitionedCache)
        assert path.ptb.num_entries == 1
        assert path.prefetch_unit is None
        assert path.iova_history is None

    def test_hypertrio_path_structure(self):
        path = build_translation_path(hypertrio_config(), _walker_for, sids=(0,))
        assert isinstance(path.devtlb, PartitionedCache)
        assert path.devtlb.num_partitions == 8
        assert path.ptb.num_entries == 32
        assert path.prefetch_unit is not None
        assert path.iova_history is not None
        assert isinstance(path.prefetch_unit.buffer, FullyAssociativeCache)

    def test_chipset_structures_geometry(self):
        config = hypertrio_config()
        path = build_translation_path(config, _walker_for)
        assert isinstance(path.iommu.nested_tlb, PartitionedCache)
        assert path.iommu.nested_tlb.num_partitions == 64
        assert isinstance(path.iommu.pte_cache, PartitionedCache)
        assert path.iommu.pte_cache.num_partitions == 32

    def test_context_cache_preregistered(self):
        path = build_translation_path(base_config(), _walker_for, sids=(3, 7))
        assert path.context_cache.resolve(3).entry.did == 3
        with pytest.raises(KeyError):
            path.context_cache.resolve(99)

    def test_oracle_devtlb_requires_next_use(self):
        config = base_config().with_overrides(
            devtlb=TlbConfig(num_entries=64, ways=8, policy="oracle")
        )
        with pytest.raises(ValueError):
            build_translation_path(config, _walker_for)
        path = build_translation_path(
            config, _walker_for, devtlb_next_use=lambda key: None
        )
        # The mirrored chipset IOTLB must not inherit the oracle policy.
        assert path.iommu.iotlb.policy_name == "lfu"

    def test_memory_latency_from_timing(self):
        path = build_translation_path(base_config(), _walker_for)
        assert path.memory.latency_ns == base_config().timing.dram_latency_ns


class TestRequestLatencyStats:
    def test_record_accumulates(self):
        stats = RequestLatencyStats()
        stats.record(10.0)
        stats.record(30.0)
        assert stats.count == 2
        assert stats.mean_ns == 20.0
        assert stats.max_ns == 30.0

    def test_empty_mean(self):
        assert RequestLatencyStats().mean_ns == 0.0


def _dummy_result(**overrides):
    fields = dict(
        config_name="Base",
        benchmark="iperf3",
        num_tenants=4,
        interleaving="RR1",
        link_bandwidth_gbps=200.0,
        elapsed_ns=1000.0,
        achieved_bandwidth_gbps=100.0,
        packets=PacketStats(),
        latency=RequestLatencyStats(),
        ptb=PtbStats(),
        dram=DramStats(),
        cache_stats={"devtlb": CacheStats(hits=3, misses=1)},
    )
    fields.update(overrides)
    return SimulationResult(**fields)


class TestSimulationResult:
    def test_link_utilization(self):
        assert _dummy_result().link_utilization == pytest.approx(0.5)

    def test_utilization_clamped_to_one(self):
        result = _dummy_result(achieved_bandwidth_gbps=250.0)
        assert result.link_utilization == 1.0

    def test_zero_link(self):
        result = _dummy_result(link_bandwidth_gbps=0.0)
        assert result.link_utilization == 0.0

    def test_hit_and_miss_rates(self):
        result = _dummy_result()
        assert result.hit_rate("devtlb") == pytest.approx(0.75)
        assert result.miss_rate("devtlb") == pytest.approx(0.25)

    def test_supplied_fraction_guard(self):
        result = _dummy_result(prefetch_supplied=10)
        assert result.prefetch_supplied_fraction == 0.0  # no requests recorded

    def test_summary_is_one_line(self):
        summary = _dummy_result().summary()
        assert "\n" not in summary
        assert "Base" in summary
        assert "iperf3" in summary


class TestCacheStats:
    def test_rates(self):
        stats = CacheStats(hits=8, misses=2)
        assert stats.accesses == 10
        assert stats.hit_rate == pytest.approx(0.8)
        assert stats.miss_rate == pytest.approx(0.2)

    def test_rates_when_untouched(self):
        stats = CacheStats()
        assert stats.hit_rate == 0.0
        assert stats.miss_rate == 0.0

    def test_reset(self):
        stats = CacheStats(hits=3, misses=4, fills=5, evictions=6, invalidations=7)
        stats.reset()
        assert stats.accesses == 0
        assert stats.fills == 0

    def test_merged_with(self):
        merged = CacheStats(hits=1, misses=2).merged_with(CacheStats(hits=3, misses=4))
        assert merged.hits == 4
        assert merged.misses == 6
