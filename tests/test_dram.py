"""Tests for the DRAM latency model."""

import pytest

from repro.mem.dram import DramStats, MainMemory


class TestMainMemory:
    def test_table2_default_latency(self):
        assert MainMemory().latency_ns == 50.0

    def test_read_returns_latency(self):
        memory = MainMemory(latency_ns=42.0)
        assert memory.read() == 42.0

    def test_kind_accounting(self):
        memory = MainMemory()
        memory.read("data")
        memory.read("pte")
        memory.read("pte")
        memory.read("history")
        assert memory.stats.reads == 4
        assert memory.stats.page_table_reads == 2
        assert memory.stats.history_reads == 1

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            MainMemory().read("disk")

    def test_stats_reset(self):
        memory = MainMemory()
        memory.read("pte")
        memory.stats.reset()
        assert memory.stats.reads == 0
        assert memory.stats.page_table_reads == 0


class TestDramStats:
    def test_independent_instances(self):
        a = MainMemory()
        b = MainMemory()
        a.read()
        assert b.stats.reads == 0

    def test_defaults(self):
        stats = DramStats()
        assert (stats.reads, stats.page_table_reads, stats.history_reads) == (
            0, 0, 0,
        )
