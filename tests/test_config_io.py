"""Tests for configuration (de)serialisation."""

import pytest

from repro.core.config import TlbConfig, base_config, hypertrio_config
from repro.core.config_io import (
    ConfigFormatError,
    config_from_dict,
    config_from_json,
    config_to_dict,
    config_to_json,
    load_config,
    save_config,
)


class TestRoundTrip:
    @pytest.mark.parametrize("factory", [base_config, hypertrio_config])
    def test_json_round_trip_preserves_config(self, factory):
        config = factory()
        assert config_from_json(config_to_json(config)) == config

    def test_round_trip_with_chipset_iotlb(self):
        config = hypertrio_config().with_overrides(
            chipset_iotlb=TlbConfig(num_entries=128, ways=8)
        )
        assert config_from_json(config_to_json(config)) == config

    def test_round_trip_with_bounded_walkers(self):
        config = base_config().with_overrides(iommu_walkers=4)
        restored = config_from_json(config_to_json(config))
        assert restored.iommu_walkers == 4

    def test_file_round_trip(self, tmp_path):
        config = hypertrio_config()
        path = tmp_path / "hyper.json"
        save_config(config, path)
        assert load_config(path) == config


class TestStrictParsing:
    def test_unknown_top_level_key_rejected(self):
        raw = config_to_dict(base_config())
        raw["turbo"] = True
        with pytest.raises(ConfigFormatError):
            config_from_dict(raw)

    def test_unknown_tlb_key_rejected(self):
        raw = config_to_dict(base_config())
        raw["devtlb"]["banks"] = 4
        with pytest.raises(ConfigFormatError):
            config_from_dict(raw)

    def test_missing_required_key_rejected(self):
        raw = config_to_dict(base_config())
        del raw["devtlb"]
        with pytest.raises(ConfigFormatError):
            config_from_dict(raw)

    def test_invalid_geometry_rejected(self):
        raw = config_to_dict(base_config())
        raw["devtlb"]["num_entries"] = 10  # not divisible by 8 ways
        with pytest.raises(ConfigFormatError):
            config_from_dict(raw)

    def test_invalid_json_rejected(self):
        with pytest.raises(ConfigFormatError):
            config_from_json("not json {")

    def test_non_object_rejected(self):
        with pytest.raises(ConfigFormatError):
            config_from_json("[1, 2, 3]")


class TestDocumentShape:
    def test_document_is_flat_jsonable(self):
        import json

        document = config_to_dict(hypertrio_config())
        json.dumps(document)  # must not raise
        assert document["ptb_entries"] == 32
        assert document["prefetch"]["enabled"] is True

    def test_base_has_no_chipset_key(self):
        assert "chipset_iotlb" not in config_to_dict(base_config())
