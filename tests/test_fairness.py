"""Tests for fairness metrics and the isolation study plumbing."""

import pytest

from repro.analysis.fairness import (
    fairness_report,
    jains_index,
    victim_slowdown,
)
from repro.analysis.isolation import ANTAGONIST, antagonist_profile
from repro.core.config import base_config, hypertrio_config
from repro.sim.simulator import HyperSimulator
from repro.trace.constructor import TraceConstructor
from repro.trace.tenant import IPERF3, make_mixed_specs


class TestJainsIndex:
    def test_perfect_fairness(self):
        assert jains_index([5.0, 5.0, 5.0]) == pytest.approx(1.0)

    def test_worst_case(self):
        assert jains_index([1.0, 0.0, 0.0, 0.0]) == pytest.approx(0.25)

    def test_scale_invariant(self):
        assert jains_index([1, 2, 3]) == pytest.approx(jains_index([10, 20, 30]))

    def test_all_zero_is_equal(self):
        assert jains_index([0.0, 0.0]) == 1.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            jains_index([])


def _mixed_run(config, with_antagonist, packets=1200):
    assignments = [(IPERF3, 4)]
    if with_antagonist:
        assignments.append((ANTAGONIST, 1))
    specs = make_mixed_specs(tuple(assignments), packets_per_tenant=50_000)
    trace = TraceConstructor().construct(specs, "RR1", max_packets=packets)
    return HyperSimulator(config, trace).run(warmup_packets=packets // 4)


class TestFairnessReport:
    def test_shares_sum_to_one(self):
        result = _mixed_run(base_config(), with_antagonist=False)
        report = fairness_report(result)
        assert sum(t.share for t in report.per_tenant.values()) == pytest.approx(1.0)
        assert 0.0 < report.jain_index <= 1.0

    def test_rr_interleaving_is_fair(self):
        result = _mixed_run(base_config(), with_antagonist=False)
        report = fairness_report(result)
        assert report.jain_index > 0.95
        assert report.max_min_ratio < 1.5

    def test_empty_result_rejected(self):
        result = _mixed_run(base_config(), with_antagonist=False)
        result.packets.per_tenant_processed = {}
        with pytest.raises(ValueError):
            fairness_report(result)


class TestVictimSlowdown:
    def test_identical_runs_give_unity(self):
        result = _mixed_run(base_config(), with_antagonist=False)
        assert victim_slowdown(result, result, [0, 1, 2, 3]) == pytest.approx(1.0)

    def test_antagonist_slows_base_victims(self):
        baseline = _mixed_run(base_config(), with_antagonist=False)
        contended = _mixed_run(base_config(), with_antagonist=True)
        retention = victim_slowdown(baseline, contended, [0, 1, 2, 3])
        assert retention < 1.0

    def test_partitioning_retains_more_than_base(self):
        """The paper's isolation claim, measured directly."""
        base_retention = victim_slowdown(
            _mixed_run(base_config(), False),
            _mixed_run(base_config(), True),
            [0, 1, 2, 3],
        )
        hyper_retention = victim_slowdown(
            _mixed_run(hypertrio_config(), False),
            _mixed_run(hypertrio_config(), True),
            [0, 1, 2, 3],
        )
        assert hyper_retention > base_retention

    def test_requires_victims(self):
        result = _mixed_run(base_config(), with_antagonist=False)
        with pytest.raises(ValueError):
            victim_slowdown(result, result, [])


class TestAntagonistProfile:
    def test_defaults(self):
        assert ANTAGONIST.num_data_pages == 256
        assert ANTAGONIST.jump_probability == 0.5
        assert ANTAGONIST.init_pages == 0

    def test_custom(self):
        profile = antagonist_profile(num_data_pages=64, jump_probability=0.2)
        assert profile.num_data_pages == 64
        assert profile.jump_probability == 0.2


class TestMakeMixedSpecs:
    def test_sid_assignment_dense(self):
        specs = make_mixed_specs(((IPERF3, 3), (ANTAGONIST, 2)), 100)
        assert [spec.sid for spec in specs] == [0, 1, 2, 3, 4]
        assert specs[3].profile.name == "antagonist"

    def test_all_get_full_budget(self):
        specs = make_mixed_specs(((IPERF3, 2),), 500)
        assert all(spec.packets == 500 for spec in specs)

    def test_validation(self):
        with pytest.raises(ValueError):
            make_mixed_specs(((IPERF3, 0),), 100)
        with pytest.raises(ValueError):
            make_mixed_specs(((IPERF3, 1),), 0)
        with pytest.raises(ValueError):
            make_mixed_specs((), 100)
