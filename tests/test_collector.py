"""Unit tests for the log-collector substitute and characterisation."""

import dataclasses

import pytest

from repro.trace.characterize import (
    characterize_multi_tenant,
    characterize_single_tenant,
    classify_page,
)
from repro.trace.collector import (
    MAX_TENANTS_PER_RUN,
    LogCollector,
    collect_single_tenant,
)
from repro.trace.tenant import IPERF3, MEDIASTREAM, make_tenant_specs
from repro.trace.workload import INIT_WINDOW_BASE


class TestLogCollector:
    def test_batches_respect_24_slot_limit(self):
        """The QEMU Q35 root complex supports 24 slots, so the collector
        runs big tenant sets in batches."""
        specs = make_tenant_specs(IPERF3, 50, 20)
        runs = LogCollector().collect(specs)
        assert len(runs) == 3
        assert [len(run.logs) for run in runs] == [24, 24, 2]

    def test_flat_collection_preserves_order(self):
        specs = make_tenant_specs(IPERF3, 30, 10)
        logs = LogCollector().collect_flat(specs)
        assert [log.sid for log in logs] == list(range(30))

    def test_log_contains_init_and_steady_requests(self):
        log = collect_single_tenant(MEDIASTREAM, packets=100)
        assert log.init_giovas
        assert len(log.packets) == 100
        assert log.request_count == len(log.init_giovas) + 300

    def test_requests_flatten_in_order(self):
        log = collect_single_tenant(IPERF3, packets=5)
        requests = list(log.requests())
        assert len(requests) == log.request_count
        assert requests[0] >= INIT_WINDOW_BASE  # init pages first

    def test_requests_can_exclude_init(self):
        log = collect_single_tenant(IPERF3, packets=5)
        steady = list(log.requests(include_init=False))
        assert len(steady) == 15

    def test_custom_batch_size(self):
        collector = LogCollector(max_tenants_per_run=4)
        runs = collector.collect(make_tenant_specs(IPERF3, 10, 5))
        assert [len(run.logs) for run in runs] == [4, 4, 2]

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            LogCollector(max_tenants_per_run=0)

    def test_default_limit_is_24(self):
        assert MAX_TENANTS_PER_RUN == 24


class TestSingleTenantCharacterization:
    @pytest.fixture(scope="class")
    def characterization(self):
        profile = dataclasses.replace(MEDIASTREAM, jump_probability=0.0)
        log = collect_single_tenant(profile, packets=20_000)
        return characterize_single_tenant(log)

    def test_three_groups_found(self, characterization):
        assert set(characterization.groups) == {"ring", "data", "init"}

    def test_ring_group_accessed_every_packet(self, characterization):
        ring = characterization.groups["ring"]
        assert ring.page_count == 2  # ring + mailbox
        assert ring.accesses_per_page == pytest.approx(20_000)

    def test_data_group_has_profile_pages(self, characterization):
        assert characterization.groups["data"].page_count == 30

    def test_init_group_is_cold(self, characterization):
        init = characterization.groups["init"]
        assert init.page_count == 70
        assert init.accesses_per_page < 100  # paper: <100 accesses each

    def test_ring_pages_dominate_frequency(self, characterization):
        """Figure 8a: the ring page is ~30x hotter than data pages."""
        ring = characterization.groups["ring"].accesses_per_page
        data = characterization.groups["data"].accesses_per_page
        assert ring > 10 * data

    def test_periodic_pattern(self, characterization):
        """Figure 8b: data pages are used in long sequential runs in a
        fixed cyclic order."""
        assert characterization.periodic
        assert characterization.mean_run_length > 100

    def test_total_requests(self, characterization):
        assert characterization.total_requests == 3 * 20_000 + 280


class TestClassifyPage:
    def test_ring_and_mailbox(self):
        assert classify_page(0x34800, 0x34800, 0x35000) == "ring"
        assert classify_page(0x35000, 0x34800, 0x35000) == "ring"

    def test_init_window(self):
        assert classify_page(0xF0000, 0x34800, 0x35000) == "init"

    def test_data(self):
        assert classify_page(0xBBE00, 0x34800, 0x35000) == "data"


class TestMultiTenantCharacterization:
    def test_full_overlap_for_identical_drivers(self):
        """Section IV-D: all tenants use the same data-page gIOVAs."""
        specs = make_tenant_specs(MEDIASTREAM, 4, 500)
        logs = LogCollector().collect_flat(specs)
        result = characterize_multi_tenant(logs)
        assert result.num_tenants == 4
        assert result.mean_pairwise_overlap > 0.5
        assert result.distinct_data_pages <= 30

    def test_single_tenant_degenerate_case(self):
        logs = [collect_single_tenant(IPERF3, packets=20)]
        result = characterize_multi_tenant(logs)
        assert result.num_tenants == 1
        assert result.mean_pairwise_overlap == 1.0
