"""Worker supervision: heartbeats, the watchdog, and exit-cause records.

Companion to ``tests/test_chaos.py`` (which attacks the *processes*);
this module pins the supervision mechanics deterministically: heartbeat
records and their atomic updates, each watchdog check in isolation (via
direct ``scan()`` calls with synthetic in-flight tables), the stale-
heartbeat-from-a-previous-attempt guard, scheduler integration (deadline
kills consume the infra-retry budget; cooperative interrupts become
``interrupted`` records that are never memoized), and the manifest's
supervision summary.
"""

import json
import pickle
import time

import pytest

from repro.runner import (
    ExperimentRunner,
    JobInterrupted,
    JobResult,
    ProgressReporter,
    ResultStore,
    RunnerOptions,
    SupervisionOptions,
    Watchdog,
    WatchdogError,
    list_heartbeats,
    read_heartbeat,
)
from repro.runner.supervise import (
    EXIT_DEADLINE,
    EXIT_INTERRUPTED,
    EXIT_WATCHDOG,
    HeartbeatWriter,
    clear_heartbeat,
    heartbeat_path,
    rss_kb,
    rss_peak_kb,
)

from tests import runner_stubs
from tests.test_runner import make_spec


# ----------------------------------------------------------------------
# Heartbeats
# ----------------------------------------------------------------------

class TestHeartbeat:
    def test_writer_records_liveness_and_checkpoints(self, tmp_path):
        writer = HeartbeatWriter(tmp_path, "abcd1234", interval_s=0.05)
        writer.start()
        try:
            beat = read_heartbeat(tmp_path, "abcd1234")
            assert beat is not None
            assert beat["status"] == "running"
            assert beat["packets_done"] == 0
            assert beat["pid"]
            writer.note_checkpoint(500, "/tmp/job.ckpt")
            beat = read_heartbeat(tmp_path, "abcd1234")
            assert beat["packets_done"] == 500
            assert beat["last_checkpoint"] == "/tmp/job.ckpt"
        finally:
            writer.stop(status="completed")
        beat = read_heartbeat(tmp_path, "abcd1234")
        assert beat["status"] == "completed"
        # Atomic writes: no temp files left next to the record.
        names = [p.name for p in heartbeat_path(tmp_path, "abcd1234").parent.iterdir()]
        assert names == ["abcd1234.json"]

    def test_writer_refreshes_updated_at(self, tmp_path):
        writer = HeartbeatWriter(tmp_path, "ffff0000", interval_s=0.02)
        writer.start()
        try:
            first = read_heartbeat(tmp_path, "ffff0000")["updated_at"]
            time.sleep(0.1)
            second = read_heartbeat(tmp_path, "ffff0000")["updated_at"]
            assert second > first
        finally:
            writer.stop()

    def test_list_and_clear(self, tmp_path):
        for spec_hash in ("aa", "bb"):
            writer = HeartbeatWriter(tmp_path, spec_hash)
            writer.path.parent.mkdir(parents=True, exist_ok=True)
            writer.write()
        assert [b["spec_hash"] for b in list_heartbeats(tmp_path)] == ["aa", "bb"]
        clear_heartbeat(tmp_path, "aa")
        assert [b["spec_hash"] for b in list_heartbeats(tmp_path)] == ["bb"]
        assert read_heartbeat(tmp_path, "aa") is None

    def test_corrupt_heartbeat_reads_as_none(self, tmp_path):
        path = heartbeat_path(tmp_path, "cc")
        path.parent.mkdir(parents=True)
        path.write_text("{torn", encoding="utf-8")
        assert read_heartbeat(tmp_path, "cc") is None
        assert list_heartbeats(tmp_path) == []

    def test_rss_helpers_report_positive(self):
        assert rss_kb() > 0
        assert rss_peak_kb() > 0


# ----------------------------------------------------------------------
# Watchdog checks in isolation
# ----------------------------------------------------------------------

def make_watchdog(tmp_path, inflight, **options):
    flagged = []
    dog = Watchdog(
        tmp_path,
        lambda: inflight,
        SupervisionOptions(**options),
        on_flag=lambda h, cause, detail: flagged.append((h, cause, detail)),
    )
    return dog, flagged


class TestWatchdog:
    def test_deadline_flags_overdue_job(self, tmp_path):
        inflight = [("job1", time.monotonic() - 10.0, time.time() - 10.0)]
        dog, flagged = make_watchdog(tmp_path, inflight, deadline_s=5.0)
        dog.scan()
        assert dog.take_flags() == {"job1": "deadline"}
        assert flagged[0][1] == "deadline"
        # Flags drain once.
        assert dog.take_flags() == {}

    def test_fresh_job_not_flagged(self, tmp_path):
        inflight = [("job1", time.monotonic(), time.time())]
        dog, _ = make_watchdog(
            tmp_path, inflight,
            deadline_s=60.0, heartbeat_timeout_s=60.0, memory_budget_kb=10**9,
        )
        dog.scan()
        assert dog.take_flags() == {}

    def test_stale_heartbeat_flags(self, tmp_path):
        started_wall = time.time() - 30.0
        inflight = [("job1", time.monotonic() - 30.0, started_wall)]
        # A heartbeat written after the attempt started, then silence.
        path = heartbeat_path(tmp_path, "job1")
        path.parent.mkdir(parents=True)
        path.write_text(
            json.dumps({"spec_hash": "job1", "updated_at": started_wall + 1.0}),
            encoding="utf-8",
        )
        dog, _ = make_watchdog(tmp_path, inflight, heartbeat_timeout_s=5.0)
        dog.scan()
        assert dog.take_flags() == {"job1": "stale"}

    def test_missing_heartbeat_counts_from_start(self, tmp_path):
        inflight = [("job1", time.monotonic() - 30.0, time.time() - 30.0)]
        dog, _ = make_watchdog(tmp_path, inflight, heartbeat_timeout_s=5.0)
        dog.scan()
        assert dog.take_flags() == {"job1": "stale"}

    def test_previous_attempt_heartbeat_cannot_kill_retry(self, tmp_path):
        """A leftover record from a killed attempt predates the retry's
        start time and must be treated as absent — the retry gets the
        full timeout, measured from its own start."""
        now = time.time()
        inflight = [("job1", time.monotonic(), now)]  # retry started *now*
        path = heartbeat_path(tmp_path, "job1")
        path.parent.mkdir(parents=True)
        path.write_text(
            json.dumps({"spec_hash": "job1", "updated_at": now - 300.0,
                        "rss_kb": 10**9}),
            encoding="utf-8",
        )
        dog, _ = make_watchdog(
            tmp_path, inflight, heartbeat_timeout_s=5.0, memory_budget_kb=1000
        )
        dog.scan()
        assert dog.take_flags() == {}

    def test_clock_step_cannot_falsely_kill(self, tmp_path):
        """A backwards wall-clock step makes ``updated_at`` look ancient,
        but the monotonic pair shows the heartbeat is fresh — the worker
        must survive."""
        import socket

        inflight = [("job1", time.monotonic() - 30.0, time.time() - 30.0)]
        path = heartbeat_path(tmp_path, "job1")
        path.parent.mkdir(parents=True)
        path.write_text(
            json.dumps({
                "spec_hash": "job1",
                "updated_at": time.time() - 7200.0,  # clock stepped back 2h
                "updated_mono": time.monotonic() - 0.1,  # actually fresh
                "host": socket.gethostname(),
            }),
            encoding="utf-8",
        )
        dog, _ = make_watchdog(tmp_path, inflight, heartbeat_timeout_s=5.0)
        dog.scan()
        assert dog.take_flags() == {}

    def test_clock_step_cannot_immortalize(self, tmp_path):
        """A forwards wall-clock step makes ``updated_at`` look fresh
        forever, but the monotonic pair shows real silence — the wedged
        worker must still be flagged."""
        import socket

        inflight = [("job1", time.monotonic() - 60.0, time.time() - 60.0)]
        path = heartbeat_path(tmp_path, "job1")
        path.parent.mkdir(parents=True)
        path.write_text(
            json.dumps({
                "spec_hash": "job1",
                "updated_at": time.time() + 7200.0,  # clock stepped ahead 2h
                "updated_mono": time.monotonic() - 30.0,  # silent for 30s
                "host": socket.gethostname(),
            }),
            encoding="utf-8",
        )
        dog, _ = make_watchdog(tmp_path, inflight, heartbeat_timeout_s=5.0)
        dog.scan()
        assert dog.take_flags() == {"job1": "stale"}

    def test_previous_attempt_guard_uses_monotonic(self, tmp_path):
        """The stale-attempt guard compares monotonic instants when the
        record carries them, so a wall-clock step between attempts can't
        resurrect a dead attempt's record."""
        import socket

        now_mono = time.monotonic()
        inflight = [("job1", now_mono, time.time() - 7200.0)]  # wall stepped
        path = heartbeat_path(tmp_path, "job1")
        path.parent.mkdir(parents=True)
        # Written (monotonically) before this attempt started, but its
        # wall stamp looks newer than the attempt's stepped wall start.
        path.write_text(
            json.dumps({
                "spec_hash": "job1",
                "updated_at": time.time() - 300.0,
                "updated_mono": now_mono - 300.0,
                "host": socket.gethostname(),
                "rss_kb": 10**9,
            }),
            encoding="utf-8",
        )
        dog, _ = make_watchdog(
            tmp_path, inflight, heartbeat_timeout_s=5.0, memory_budget_kb=1000
        )
        dog.scan()
        assert dog.take_flags() == {}

    def test_foreign_host_heartbeat_falls_back_to_wall(self, tmp_path):
        """A heartbeat written on another machine (shared run directory)
        carries a non-comparable monotonic value; staleness falls back to
        wall-clock arithmetic."""
        from repro.runner.supervise import heartbeat_silence_s

        silent = heartbeat_silence_s({
            "updated_at": time.time() - 42.0,
            "updated_mono": 10.0**9,  # meaningless on this host
            "host": "some-other-host",
        })
        assert 41.0 < silent < 44.0

    def test_writer_emits_monotonic_pair(self, tmp_path):
        writer = HeartbeatWriter(tmp_path, "mono1")
        writer.path.parent.mkdir(parents=True, exist_ok=True)
        before = time.monotonic()
        writer.write()
        beat = read_heartbeat(tmp_path, "mono1")
        import socket

        assert beat["host"] == socket.gethostname()
        assert before <= beat["updated_mono"] <= time.monotonic()

    def test_memory_budget_flags(self, tmp_path):
        started_wall = time.time() - 1.0
        inflight = [("job1", time.monotonic() - 1.0, started_wall)]
        path = heartbeat_path(tmp_path, "job1")
        path.parent.mkdir(parents=True)
        path.write_text(
            json.dumps({"spec_hash": "job1", "updated_at": time.time(),
                        "rss_kb": 2048}),
            encoding="utf-8",
        )
        dog, flagged = make_watchdog(tmp_path, inflight, memory_budget_kb=1024)
        dog.scan()
        assert dog.take_flags() == {"job1": "memory"}
        assert "2048" in flagged[0][2]

    def test_watchdog_error_exit_causes(self):
        assert WatchdogError("x", cause="deadline").exit_cause == EXIT_DEADLINE
        assert WatchdogError("x", cause="stale").exit_cause == EXIT_WATCHDOG
        assert WatchdogError("x", cause="memory").exit_cause == EXIT_WATCHDOG

    def test_exceptions_survive_pickling(self):
        error = pickle.loads(pickle.dumps(WatchdogError("boom", cause="memory")))
        assert error.cause == "memory"
        interrupted = pickle.loads(
            pickle.dumps(JobInterrupted("stop", packets_done=7,
                                        checkpoint_path="/tmp/c.ckpt"))
        )
        assert interrupted.packets_done == 7
        assert interrupted.checkpoint_path == "/tmp/c.ckpt"


# ----------------------------------------------------------------------
# Scheduler integration
# ----------------------------------------------------------------------

class TestSchedulerSupervision:
    def test_deadline_kill_requeues_then_fails_with_cause(self, tmp_path):
        spec = make_spec(benchmark="hang", seed=3)
        store = ResultStore(tmp_path / "runs", "deadline")
        runner = ExperimentRunner(
            store=store,
            options=RunnerOptions(jobs=2, max_attempts=2, backoff_s=0.01),
            supervision=SupervisionOptions(deadline_s=0.4, watchdog_poll_s=0.05),
            job_fn=runner_stubs.hang_job,
        )
        result = runner.run([spec])[0]
        assert result.status == "failed"
        assert result.exit_cause == EXIT_DEADLINE
        assert result.attempts == 2
        assert runner.stats.retried == 1
        assert "watchdog" in result.error

    def test_interrupted_jobs_not_memoized(self, tmp_path):
        store = ResultStore(tmp_path / "runs", "int")
        store.record(
            JobResult(
                spec_hash="dead", status="interrupted", spec={},
                error="JobInterrupted: stop", exit_cause=EXIT_INTERRUPTED,
            )
        )
        reloaded = ResultStore(tmp_path / "runs", "int")
        assert reloaded.get("dead") is None  # re-executes on resume
        assert reloaded.status_counts == {"interrupted": 1}
        assert reloaded.exit_causes == {"interrupted": 1}

    def test_inline_interrupt_stops_run_and_records(self, tmp_path):
        def interrupting_job(spec):
            raise JobInterrupted("stopped at barrier", packets_done=100,
                                 checkpoint_path="/tmp/a.ckpt")

        store = ResultStore(tmp_path / "runs", "inline")
        runner = ExperimentRunner(
            store=store,
            options=RunnerOptions(jobs=1),
            job_fn=interrupting_job,
        )
        with pytest.raises(KeyboardInterrupt):
            runner.run([make_spec(seed=1), make_spec(seed=2)])
        assert runner.stats.interrupted == 1
        reloaded = ResultStore(tmp_path / "runs", "inline")
        assert reloaded.status_counts == {"interrupted": 1}
        assert reloaded.completed_count == 0

    def test_custom_job_fn_is_not_wrapped(self, tmp_path):
        """Supervision must not swap a caller-provided job function for
        the supervised sim worker — only the default path is wrapped."""
        store = ResultStore(tmp_path / "runs", "custom")
        runner = ExperimentRunner(
            store=store,
            options=RunnerOptions(jobs=1),
            supervision=SupervisionOptions(checkpoint_every=100),
            job_fn=runner_stubs.ok_job,
        )
        assert runner.job_fn is runner_stubs.ok_job
        result = runner.run([make_spec(seed=5)])[0]
        assert result.ok


# ----------------------------------------------------------------------
# Result records and the manifest summary
# ----------------------------------------------------------------------

class TestSupervisionRecords:
    def test_old_records_serialise_unchanged(self):
        """Records without supervision fields keep their exact pre-existing
        JSON layout — resumed old runs stay byte-compatible."""
        result = JobResult(spec_hash="aa", status="ok", result={"x": 1})
        document = result.to_dict()
        assert "exit_cause" not in document
        assert "rss_peak_kb" not in document
        clone = JobResult.from_dict(json.loads(json.dumps(document)))
        assert clone.exit_cause is None
        assert clone.rss_peak_kb is None

    def test_new_fields_round_trip(self):
        result = JobResult(
            spec_hash="bb", status="ok", result={}, exit_cause="completed",
            rss_peak_kb=12345, duration_s=1.5,
        )
        clone = JobResult.from_dict(result.to_dict())
        assert clone.exit_cause == "completed"
        assert clone.rss_peak_kb == 12345

    def test_store_supervision_summary(self, tmp_path):
        store = ResultStore(tmp_path / "runs", "sum")
        store.record(JobResult(spec_hash="a", status="ok", result={},
                               exit_cause="completed", duration_s=2.0,
                               rss_peak_kb=1000))
        store.record(JobResult(spec_hash="b", status="failed", error="x",
                               exit_cause="deadline", duration_s=5.0))
        store.record(JobResult(spec_hash="c", status="interrupted", error="y",
                               exit_cause="interrupted"))
        store.record(JobResult(spec_hash="d", status="ok", result={}))  # legacy
        summary = store.supervision_summary()
        assert summary["status_counts"] == {
            "failed": 1, "interrupted": 1, "ok": 2
        }
        assert summary["exit_causes"] == {
            "completed": 2, "deadline": 1, "interrupted": 1
        }
        assert summary["max_job_wall_clock_s"] == 5.0
        assert summary["max_job_rss_peak_kb"] == 1000
        # Survives a reload from disk.
        reloaded = ResultStore(tmp_path / "runs", "sum")
        assert reloaded.supervision_summary() == summary

    def test_progress_reports_interrupted(self, capsys):
        import sys

        reporter = ProgressReporter(stream=sys.stderr, enabled=True)
        reporter.start(total=3, cached=0)
        reporter.job_interrupted(
            JobResult(spec_hash="aa", status="interrupted", error="stop")
        )
        reporter.job_failed(
            JobResult(spec_hash="bb", status="failed", error="boom",
                      exit_cause="deadline", attempts=2)
        )

        class Stats:
            executed = 1
            cached = 0
            failed = 1
            interrupted = 1
            retried = 0
            wall_clock_s = 1.0

        reporter.finish(Stats())
        err = capsys.readouterr().err
        assert "interrupted (checkpoint kept" in err
        assert "[deadline]" in err
        assert "1 interrupted" in err
