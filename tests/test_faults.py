"""Fault-injection subsystem: plan format, determinism, degraded mode.

The bit-reproducibility contract under test:

* no plan (and a zero-probability plan) must leave results **byte**
  identical to a fault-free run — the injector path costs nothing when
  it injects nothing;
* any seeded plan must produce byte-identical results across repeated
  runs — fault schedules are part of the experiment, not noise;
* every injected drop is attributed to a cause, and the per-cause
  breakdown always sums to the total drop counter.
"""

import dataclasses
import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import TimingParams, base_config, hypertrio_config
from repro.core.config_io import config_from_dict, config_to_dict
from repro.faults import (
    DeviceResetSpec,
    FaultInjector,
    FaultPlan,
    FaultPlanFormatError,
    InvalidationStormSpec,
    LatencySpikeSpec,
    PtbLeakSpec,
    TranslationFaultSpec,
    load_plan,
    plan_from_dict,
    plan_from_json,
    plan_to_dict,
    plan_to_json,
    save_plan,
)
from repro.runner.serialize import result_to_dict
from repro.runner.spec import JobSpec
from repro.analysis.scale import RunScale
from repro.sim.des import simulate_evented
from repro.sim.simulator import HyperSimulator, simulate
from repro.trace.constructor import construct_trace
from repro.trace.tenant import MEDIASTREAM


def _trace(tenants=4, packets=800, interleaving="RR1"):
    return construct_trace(
        MEDIASTREAM,
        num_tenants=tenants,
        packets_per_tenant=100_000,
        interleaving=interleaving,
        max_packets=packets,
    )


def _run_bytes(config, trace, fault_plan=None, native=False, warmup=0):
    """Canonical serialisation of one run (the byte-identity probe)."""
    result = simulate(
        config, trace, native=native, warmup_packets=warmup,
        fault_plan=fault_plan,
    )
    return json.dumps(result_to_dict(result), sort_keys=True)


# ----------------------------------------------------------------------
# Plan format: round-trip, strictness, validation
# ----------------------------------------------------------------------

def _full_plan():
    return FaultPlan(
        seed=42,
        translation_faults=(
            TranslationFaultSpec(probability=0.25),
            TranslationFaultSpec(
                probability=0.5, sid=3, start_ns=100.0, end_ns=5000.0
            ),
        ),
        invalidation_storms=(InvalidationStormSpec(sid=1, at_ns=2000.0),),
        device_resets=(DeviceResetSpec(device_id=0, at_ns=3000.0),),
        latency_spikes=(
            LatencySpikeSpec(
                target="dram", start_ns=0.0, end_ns=1000.0, extra_ns=75.0
            ),
        ),
        ptb_leaks=(PtbLeakSpec(entries=4, start_ns=500.0, end_ns=9000.0),),
    )


class TestPlanFormat:
    def test_round_trip_identity(self):
        plan = _full_plan()
        assert plan_from_dict(plan_to_dict(plan)) == plan
        assert plan_from_json(plan_to_json(plan)) == plan

    def test_file_round_trip(self, tmp_path):
        plan = _full_plan()
        path = save_plan(plan, tmp_path / "plan.json")
        assert load_plan(path) == plan

    def test_null_plan_serialises_minimal(self):
        assert plan_to_dict(FaultPlan()) == {"seed": 0}
        assert FaultPlan().is_null
        assert not _full_plan().is_null

    def test_unknown_top_level_key_rejected(self):
        with pytest.raises(FaultPlanFormatError, match="unknown"):
            plan_from_dict({"seed": 1, "translation_fautls": []})

    def test_unknown_spec_key_rejected(self):
        with pytest.raises(FaultPlanFormatError, match="unknown"):
            plan_from_dict(
                {"translation_faults": [{"probability": 0.1, "sids": 3}]}
            )

    def test_validation_errors(self):
        with pytest.raises(ValueError):
            TranslationFaultSpec(probability=1.5)
        with pytest.raises(ValueError):
            TranslationFaultSpec(probability=0.5, start_ns=10.0, end_ns=5.0)
        with pytest.raises(ValueError):
            LatencySpikeSpec(target="nvme", start_ns=0.0, end_ns=1.0,
                             extra_ns=10.0)
        with pytest.raises(ValueError):
            PtbLeakSpec(entries=0, start_ns=0.0, end_ns=1.0)


# ----------------------------------------------------------------------
# Injector unit behaviour
# ----------------------------------------------------------------------

class TestInjector:
    def test_zero_probability_consumes_no_rng(self):
        plan = FaultPlan(
            seed=9,
            translation_faults=(TranslationFaultSpec(probability=0.0),),
        )
        injector = FaultInjector(plan)
        state = injector.rng.getstate()
        assert not injector.translation_fault(10.0, 0)
        assert injector.rng.getstate() == state

    def test_certain_fault_consumes_no_rng(self):
        plan = FaultPlan(
            seed=9,
            translation_faults=(TranslationFaultSpec(probability=1.0),),
        )
        injector = FaultInjector(plan)
        state = injector.rng.getstate()
        assert injector.translation_fault(10.0, 0)
        assert injector.rng.getstate() == state

    def test_window_and_sid_filtering(self):
        plan = FaultPlan(
            translation_faults=(
                TranslationFaultSpec(
                    probability=1.0, sid=2, start_ns=100.0, end_ns=200.0
                ),
            ),
        )
        injector = FaultInjector(plan)
        assert injector.translation_fault(150.0, 2)
        assert not injector.translation_fault(150.0, 1)
        assert not injector.translation_fault(50.0, 2)
        assert not injector.translation_fault(250.0, 2)

    def test_storm_cursor_fires_once(self):
        plan = FaultPlan(
            invalidation_storms=(
                InvalidationStormSpec(sid=1, at_ns=100.0),
                InvalidationStormSpec(sid=2, at_ns=100.0),
                InvalidationStormSpec(sid=3, at_ns=900.0),
            ),
        )
        injector = FaultInjector(plan)
        assert [s.sid for s in injector.due_storms(50.0)] == []
        assert [s.sid for s in injector.due_storms(100.0)] == [1, 2]
        assert [s.sid for s in injector.due_storms(100.0)] == []
        assert [s.sid for s in injector.due_storms(1e9)] == [3]

    def test_reset_coalesces_overdue_firings(self):
        plan = FaultPlan(
            device_resets=(
                DeviceResetSpec(device_id=0, at_ns=10.0),
                DeviceResetSpec(device_id=0, at_ns=20.0),
            ),
        )
        injector = FaultInjector(plan)
        assert injector.due_reset(0, 50.0)
        assert not injector.due_reset(0, 60.0)
        assert not injector.due_reset(1, 60.0)

    def test_spike_windows_sum(self):
        plan = FaultPlan(
            latency_spikes=(
                LatencySpikeSpec(target="pcie", start_ns=0.0, end_ns=100.0,
                                 extra_ns=10.0),
                LatencySpikeSpec(target="pcie", start_ns=50.0, end_ns=100.0,
                                 extra_ns=5.0),
                LatencySpikeSpec(target="dram", start_ns=0.0, end_ns=100.0,
                                 extra_ns=7.0),
            ),
        )
        injector = FaultInjector(plan)
        assert injector.pcie_extra_ns(75.0) == 15.0
        assert injector.pcie_extra_ns(25.0) == 10.0
        assert injector.pcie_extra_ns(500.0) == 0.0
        assert injector.dram_extra_ns(75.0) == 7.0


# ----------------------------------------------------------------------
# Byte-identity and determinism through the simulator
# ----------------------------------------------------------------------

class TestDeterminism:
    def test_no_plan_matches_zero_probability_plan(self):
        config = hypertrio_config()
        plain = _run_bytes(config, _trace())
        zero = FaultPlan(
            seed=77,
            translation_faults=(TranslationFaultSpec(probability=0.0),),
        )
        assert _run_bytes(config, _trace(), fault_plan=zero) == plain

    def test_seeded_plan_bit_identical_across_runs(self):
        config = hypertrio_config()
        plan = _full_plan()
        first = _run_bytes(config, _trace(), fault_plan=plan)
        second = _run_bytes(config, _trace(), fault_plan=plan)
        assert first == second

    def test_different_seeds_diverge(self):
        config = base_config()
        plan = FaultPlan(
            seed=1, translation_faults=(TranslationFaultSpec(probability=0.5),)
        )
        other = dataclasses.replace(plan, seed=2)
        trace = _trace(tenants=8, packets=1500)
        a = simulate(base_config(), _trace(tenants=8, packets=1500),
                     fault_plan=plan)
        b = simulate(config, trace, fault_plan=other)
        assert a.packets.drop_causes != b.packets.drop_causes

    @settings(max_examples=8, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**31),
        probability=st.floats(min_value=0.0, max_value=1.0),
        storm_at=st.floats(min_value=0.0, max_value=60_000.0),
        leak=st.integers(min_value=1, max_value=64),
    )
    def test_any_seeded_plan_is_reproducible(
        self, seed, probability, storm_at, leak
    ):
        plan = FaultPlan(
            seed=seed,
            translation_faults=(
                TranslationFaultSpec(probability=probability),
            ),
            invalidation_storms=(InvalidationStormSpec(sid=1, at_ns=storm_at),),
            ptb_leaks=(PtbLeakSpec(entries=leak, start_ns=0.0,
                                   end_ns=storm_at + 10_000.0),),
        )
        config = hypertrio_config()
        first = _run_bytes(config, _trace(tenants=2, packets=300),
                           fault_plan=plan)
        second = _run_bytes(config, _trace(tenants=2, packets=300),
                            fault_plan=plan)
        assert first == second


# ----------------------------------------------------------------------
# Degraded-mode behaviour
# ----------------------------------------------------------------------

class TestDegradedMode:
    def test_drop_causes_sum_to_total(self):
        plan = FaultPlan(
            seed=3,
            translation_faults=(TranslationFaultSpec(probability=0.6),),
            device_resets=(DeviceResetSpec(device_id=0, at_ns=20_000.0),),
        )
        result = simulate(base_config(), _trace(tenants=8, packets=2000),
                          fault_plan=plan)
        causes = result.packets.drop_causes
        assert sum(causes.values()) == result.packets.dropped
        assert causes.get("translation_fault", 0) > 0

    def test_certain_faults_drop_every_walk(self):
        plan = FaultPlan(
            translation_faults=(TranslationFaultSpec(probability=1.0),),
        )
        result = simulate(base_config(), _trace(), fault_plan=plan)
        causes = result.packets.drop_causes
        assert causes.get("translation_fault", 0) > 0
        # No walk ever completes, so the IOMMU's walkers stay idle.
        assert result.cache_stats["iotlb"].hits == 0

    def test_retry_backoff_charges_latency(self):
        # Same trace, same seed; only the retry budget differs.  More
        # retries -> faulted packets that eventually succeed pay more
        # backoff, and fewer drop.
        lenient = TimingParams(fault_max_retries=8)
        plan = FaultPlan(
            seed=5, translation_faults=(TranslationFaultSpec(probability=0.7),)
        )
        trace_args = dict(tenants=16, packets=2000)
        strict_run = simulate(base_config(), _trace(**trace_args),
                              fault_plan=plan)
        lenient_run = simulate(base_config(timing=lenient),
                               _trace(**trace_args), fault_plan=plan)
        strict_drops = strict_run.packets.drop_causes.get("translation_fault", 0)
        lenient_drops = lenient_run.packets.drop_causes.get(
            "translation_fault", 0
        )
        assert lenient_drops < strict_drops

    def test_device_reset_drops_and_flushes(self):
        plan = FaultPlan(
            device_resets=(DeviceResetSpec(device_id=0, at_ns=15_000.0),),
        )
        result = simulate(hypertrio_config(), _trace(), fault_plan=plan)
        assert result.packets.drop_causes.get("device_reset") == 1

    def test_ptb_leak_increases_overflow_drops(self):
        trace_args = dict(tenants=16, packets=2500)
        healthy = simulate(hypertrio_config(), _trace(**trace_args))
        plan = FaultPlan(
            ptb_leaks=(PtbLeakSpec(entries=31, start_ns=0.0, end_ns=1e12),),
        )
        leaked = simulate(hypertrio_config(), _trace(**trace_args),
                          fault_plan=plan)
        assert (
            leaked.packets.drop_causes.get("ptb_overflow", 0)
            > healthy.packets.drop_causes.get("ptb_overflow", 0)
        )

    def test_pcie_spike_raises_latency(self):
        plan = FaultPlan(
            latency_spikes=(
                LatencySpikeSpec(target="pcie", start_ns=0.0, end_ns=1e12,
                                 extra_ns=500.0),
            ),
        )
        baseline = simulate(base_config(), _trace())
        spiked = simulate(base_config(), _trace(), fault_plan=plan)
        assert spiked.latency.mean_ns > baseline.latency.mean_ns

    def test_invalidation_storm_flushes_tenant(self):
        plan = FaultPlan(
            invalidation_storms=(InvalidationStormSpec(sid=0, at_ns=20_000.0),),
        )
        baseline = simulate(hypertrio_config(), _trace())
        stormed = simulate(hypertrio_config(), _trace(), fault_plan=plan)
        assert stormed.invalidation_messages > baseline.invalidation_messages

    def test_analytic_and_evented_agree_under_faults(self):
        config = hypertrio_config()
        plan = _full_plan()
        analytic = simulate(config, _trace(), fault_plan=plan)
        evented = simulate_evented(config, _trace(), fault_plan=plan)
        assert result_to_dict(evented) == result_to_dict(analytic)


# ----------------------------------------------------------------------
# Stale-prefetch invalidation (the satellite fix)
# ----------------------------------------------------------------------

class TestStalePrefetchInvalidation:
    def _engine(self):
        sim = HyperSimulator(hypertrio_config(), _trace(packets=50))
        return sim, sim.engines[0]

    def test_apply_install_skips_cancelled_prefetch(self):
        _sim, engine = self._engine()
        unit = engine.device.prefetch_unit
        engine.apply_install(0.0, 7, 123, 0xABC000, 12)
        assert unit.lookup(7, 123) is None

    def test_inflight_install_lands_when_not_invalidated(self):
        _sim, engine = self._engine()
        engine._inflight_prefetches.add((7, 123))
        engine.apply_install(0.0, 7, 123, 0xABC000, 12)
        assert engine.device.prefetch_unit.lookup(7, 123) is not None
        assert (7, 123) not in engine._inflight_prefetches

    def test_tenant_invalidation_purges_inflight_installs(self):
        sim, engine = self._engine()
        engine._inflight_prefetches.update({(7, 1), (7, 2), (8, 3)})
        sim.fabric.chipset.iommu.invalidate_tenant(7)
        assert engine._inflight_prefetches == {(8, 3)}
        engine.apply_install(0.0, 7, 1, 0xABC000, 12)
        assert engine.device.prefetch_unit.lookup(7, 1) is None


# ----------------------------------------------------------------------
# Config and job-spec integration
# ----------------------------------------------------------------------

class TestConfigIntegration:
    def test_fault_knobs_omitted_at_default(self):
        document = config_to_dict(base_config())
        assert "fault_max_retries" not in document["timing"]
        assert "fault_backoff_ns" not in document["timing"]

    def test_fault_knobs_round_trip(self):
        timing = TimingParams(fault_max_retries=5, fault_backoff_ns=80.0)
        config = base_config(timing=timing)
        document = config_to_dict(config)
        assert document["timing"]["fault_max_retries"] == 5
        assert document["timing"]["fault_backoff_ns"] == 80.0
        assert config_from_dict(document) == config

    def test_job_spec_hash_stable_without_plan(self):
        scale = RunScale(
            name="t", tenant_counts=(4,), interleavings=("RR1",),
            benchmarks=("mediastream",), max_packets=100,
            packets_per_tenant=1000, warmup_fraction=0.25,
        )
        spec = JobSpec.from_point(base_config(), "mediastream", 4, "RR1", scale)
        assert "fault_plan" not in spec.to_dict()
        faulted = JobSpec.from_point(
            base_config(), "mediastream", 4, "RR1", scale,
            fault_plan=FaultPlan(seed=1),
        )
        assert faulted.spec_hash != spec.spec_hash
        assert faulted.to_dict()["fault_plan"] == {"seed": 1}
