"""Unit tests for replacement policies."""

import pytest

from repro.cache.policies import (
    FifoPolicy,
    LfuPolicy,
    LruPolicy,
    OraclePolicy,
    RandomPolicy,
    make_policy_factory,
)


class TestLru:
    def test_victim_is_least_recent(self):
        policy = LruPolicy()
        for key in "abc":
            policy.on_fill(key)
        assert policy.victim() == "a"

    def test_hit_refreshes_recency(self):
        policy = LruPolicy()
        for key in "abc":
            policy.on_fill(key)
        policy.on_hit("a")
        assert policy.victim() == "b"

    def test_evict_removes_key(self):
        policy = LruPolicy()
        policy.on_fill("a")
        policy.on_fill("b")
        policy.on_evict("a")
        assert list(policy.keys()) == ["b"]

    def test_victim_respects_exclusion(self):
        policy = LruPolicy()
        for key in "abc":
            policy.on_fill(key)
        assert policy.victim(excluding={"a"}) == "b"

    def test_victim_none_when_all_excluded(self):
        policy = LruPolicy()
        policy.on_fill("a")
        assert policy.victim(excluding={"a"}) is None

    def test_victim_on_empty_raises(self):
        with pytest.raises(LookupError):
            LruPolicy().victim()

    def test_promote_acts_as_touch(self):
        policy = LruPolicy()
        for key in "abc":
            policy.on_fill(key)
        policy.promote("a")
        assert policy.victim() == "b"


class TestFifo:
    def test_victim_is_oldest_insertion(self):
        policy = FifoPolicy()
        for key in "abc":
            policy.on_fill(key)
        policy.on_hit("a")  # hits do not matter for FIFO
        assert policy.victim() == "a"

    def test_exclusion(self):
        policy = FifoPolicy()
        for key in "ab":
            policy.on_fill(key)
        assert policy.victim(excluding={"a"}) == "b"


class TestLfu:
    def test_victim_is_least_frequent(self):
        policy = LfuPolicy()
        policy.on_fill("hot")
        policy.on_fill("cold")
        for _ in range(5):
            policy.on_hit("hot")
        assert policy.victim() == "cold"

    def test_tie_broken_by_insertion_order(self):
        policy = LfuPolicy()
        policy.on_fill("first")
        policy.on_fill("second")
        assert policy.victim() == "first"

    def test_counter_saturation_halves_row(self):
        """The paper's scheme: a 4-bit counter saturates at 15 and the whole
        row is halved."""
        policy = LfuPolicy(counter_bits=4)
        policy.on_fill("hot")
        policy.on_fill("warm")
        for _ in range(3):
            policy.on_hit("warm")  # counter 4
        for _ in range(14):
            policy.on_hit("hot")  # counter reaches 15
        policy.on_hit("hot")  # triggers halving: hot 7->8, warm 2
        assert policy.counter("hot") == 8
        assert policy.counter("warm") == 2

    def test_promote_adds_steps(self):
        policy = LfuPolicy()
        policy.on_fill("a")  # counter 1
        policy.promote("a", steps=2)
        assert policy.counter("a") == 3

    def test_relative_frequency_preserved_after_halving(self):
        policy = LfuPolicy(counter_bits=2)  # saturates at 3
        policy.on_fill("hot")
        policy.on_fill("cold")
        for _ in range(10):
            policy.on_hit("hot")
        assert policy.victim() == "cold"

    def test_invalid_counter_bits(self):
        with pytest.raises(ValueError):
            LfuPolicy(counter_bits=0)

    def test_exclusion_picks_next_least_frequent(self):
        policy = LfuPolicy()
        policy.on_fill("a")
        policy.on_fill("b")
        policy.on_hit("b")
        assert policy.victim(excluding={"a"}) == "b"


class TestRandom:
    def test_deterministic_with_seed(self):
        a = RandomPolicy(seed=7)
        b = RandomPolicy(seed=7)
        for key in "abcdef":
            a.on_fill(key)
            b.on_fill(key)
        assert [a.victim() for _ in range(5)] == [b.victim() for _ in range(5)]

    def test_victim_among_tracked_keys(self):
        policy = RandomPolicy()
        for key in "abc":
            policy.on_fill(key)
        assert policy.victim() in set("abc")

    def test_exclusion(self):
        policy = RandomPolicy()
        policy.on_fill("a")
        policy.on_fill("b")
        assert policy.victim(excluding={"a"}) == "b"
        assert policy.victim(excluding={"a", "b"}) is None


class TestOracle:
    def test_evicts_furthest_future_use(self):
        future = {"a": 10, "b": 3, "c": 7}
        policy = OraclePolicy(lambda key: future[key])
        for key in "abc":
            policy.on_fill(key)
        assert policy.victim() == "a"

    def test_never_used_again_is_perfect_victim(self):
        future = {"a": 10, "b": None}
        policy = OraclePolicy(lambda key: future[key])
        policy.on_fill("a")
        policy.on_fill("b")
        assert policy.victim() == "b"

    def test_exclusion(self):
        future = {"a": 10, "b": 3}
        policy = OraclePolicy(lambda key: future[key])
        policy.on_fill("a")
        policy.on_fill("b")
        assert policy.victim(excluding={"a"}) == "b"


class TestFactory:
    @pytest.mark.parametrize("name", ["lru", "lfu", "fifo", "random"])
    def test_known_policies(self, name):
        factory = make_policy_factory(name)
        assert factory() is not factory()  # fresh instance per set

    def test_case_insensitive(self):
        assert isinstance(make_policy_factory("LFU")(), LfuPolicy)

    def test_oracle_requires_next_use(self):
        with pytest.raises(ValueError):
            make_policy_factory("oracle")

    def test_oracle_with_next_use(self):
        factory = make_policy_factory("oracle", next_use=lambda key: None)
        assert isinstance(factory(), OraclePolicy)

    def test_unknown_policy(self):
        with pytest.raises(ValueError):
            make_policy_factory("mru")
