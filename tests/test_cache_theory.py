"""Theory-backed properties of the cache stack.

Two classical results give strong end-to-end checks of the replacement
machinery:

* **Belady optimality** — on any access stream, a fully associative cache
  under the oracle policy (with a correct future oracle) hits at least as
  often as the same cache under LRU.
* **Stack-distance equivalence** — a fully associative LRU cache of
  capacity ``C`` hits exactly those accesses whose LRU stack distance is
  below ``C``.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.reuse import reuse_distances
from repro.cache.setassoc import FullyAssociativeCache
from repro.sim.oracle import FutureOracle

key_streams = st.lists(st.integers(min_value=0, max_value=12),
                       min_size=1, max_size=150)
capacities = st.integers(min_value=1, max_value=8)


def _run_lru(keys, capacity):
    cache = FullyAssociativeCache(num_entries=capacity, policy="lru")
    hits = []
    for key in keys:
        hit = cache.lookup(key) is not None
        hits.append(hit)
        if not hit:
            cache.insert(key, key)
    return hits


def _run_oracle(keys, capacity):
    oracle = FutureOracle(keys)
    cache = FullyAssociativeCache(
        num_entries=capacity, policy="oracle", next_use=oracle.next_use
    )
    hits = 0
    for key in keys:
        if cache.lookup(key) is not None:
            hits += 1
        else:
            cache.insert(key, key)
        oracle.consume(key)
    return hits


class TestBeladyOptimality:
    @given(key_streams, capacities)
    @settings(max_examples=80, deadline=None)
    def test_oracle_never_loses_to_lru(self, keys, capacity):
        lru_hits = sum(_run_lru(keys, capacity))
        oracle_hits = _run_oracle(keys, capacity)
        assert oracle_hits >= lru_hits

    def test_oracle_beats_lru_on_cyclic_scan(self):
        """The canonical LRU-pathological workload: a cyclic scan one item
        larger than the cache.  LRU gets zero hits; Belady does not."""
        keys = [0, 1, 2, 3] * 10  # capacity 3, cycle of 4
        assert sum(_run_lru(keys, 3)) == 0
        assert _run_oracle(keys, 3) > 0


class TestStackDistanceEquivalence:
    @given(key_streams, capacities)
    @settings(max_examples=80, deadline=None)
    def test_lru_hits_are_exactly_small_stack_distances(self, keys, capacity):
        hits = _run_lru(keys, capacity)
        distances = reuse_distances(keys)
        for hit, distance in zip(hits, distances):
            expected = distance is not None and distance < capacity
            assert hit == expected
