"""Tests for the analysis package: scale presets, reports, sweeps."""

import pytest

from repro.analysis.report import ExperimentTable
from repro.analysis.scale import DEFAULT, FULL, SCALE_ENV_VAR, SMOKE, current_scale
from repro.analysis.sweeps import (
    cached_trace,
    clear_trace_cache,
    run_point,
    sweep_tenants,
    utilization_by_count,
)
from repro.core.config import base_config, hypertrio_config


class TestScalePresets:
    def test_presets_grow_monotonically(self):
        assert SMOKE.max_packets < DEFAULT.max_packets <= FULL.max_packets
        assert len(SMOKE.tenant_counts) <= len(DEFAULT.tenant_counts)
        assert len(FULL.interleavings) == 3

    def test_full_covers_paper_sweep(self):
        assert FULL.tenant_counts == (4, 16, 64, 256, 1024)
        assert set(FULL.benchmarks) == {"iperf3", "mediastream", "websearch"}

    def test_packets_for_scales_with_tenants(self):
        assert DEFAULT.packets_for(1024) >= DEFAULT.packets_for(4)
        assert DEFAULT.packets_for(10_000) == DEFAULT.max_packets

    def test_warmup_fraction(self):
        assert SMOKE.warmup_for(1000) == 250

    def test_current_scale_from_env(self, monkeypatch):
        monkeypatch.setenv(SCALE_ENV_VAR, "smoke")
        assert current_scale() is SMOKE
        monkeypatch.setenv(SCALE_ENV_VAR, "full")
        assert current_scale() is FULL
        monkeypatch.delenv(SCALE_ENV_VAR)
        assert current_scale() is DEFAULT

    def test_current_scale_rejects_unknown(self, monkeypatch):
        monkeypatch.setenv(SCALE_ENV_VAR, "enormous")
        with pytest.raises(ValueError):
            current_scale()


class TestExperimentTable:
    def test_add_row_validates_arity(self):
        table = ExperimentTable("T", "title", ["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_column_extraction(self):
        table = ExperimentTable("T", "title", ["a", "b"])
        table.add_row(1, 2)
        table.add_row(3, 4)
        assert table.column("b") == [2, 4]

    def test_render_contains_all_cells(self):
        table = ExperimentTable("Figure X", "demo", ["n", "util %"])
        table.add_row(4, 99.5)
        table.add_note("a note")
        text = table.render()
        assert "Figure X" in text
        assert "99.5" in text
        assert "a note" in text

    def test_markdown_shape(self):
        table = ExperimentTable("T", "demo", ["a"])
        table.add_row(1)
        markdown = table.to_markdown()
        assert markdown.startswith("### T: demo")
        assert "| a |" in markdown
        assert "| 1 |" in markdown

    def test_large_number_formatting(self):
        table = ExperimentTable("T", "demo", ["v"])
        table.add_row(1234567.0)
        assert "1,234,567" in table.render()


class TestSweeps:
    def setup_method(self):
        clear_trace_cache()

    def test_cached_trace_reused(self, tiny_scale):
        first = cached_trace("mediastream", 2, "RR1", tiny_scale)
        second = cached_trace("mediastream", 2, "RR1", tiny_scale)
        assert first is second

    def test_distinct_keys_not_shared(self, tiny_scale):
        a = cached_trace("mediastream", 2, "RR1", tiny_scale)
        b = cached_trace("mediastream", 2, "RR4", tiny_scale)
        assert a is not b

    def test_run_point_fields(self, tiny_scale):
        point = run_point(base_config(), "mediastream", 2, "RR1", tiny_scale)
        assert point.config_name == "Base"
        assert point.num_tenants == 2
        assert 0 <= point.utilization_percent <= 100
        assert point.bandwidth_gbps >= 0

    def test_sweep_tenants_cartesian(self, tiny_scale):
        points = sweep_tenants(
            [base_config(), hypertrio_config()],
            ["mediastream"],
            ["RR1"],
            tiny_scale,
        )
        assert len(points) == 2 * 1 * 1 * len(tiny_scale.tenant_counts)

    def test_utilization_by_count_grouping(self, tiny_scale):
        points = sweep_tenants([base_config()], ["mediastream"], ["RR1"], tiny_scale)
        series = utilization_by_count(points)
        key = ("Base", "mediastream", "RR1")
        assert key in series
        assert set(series[key]) == set(tiny_scale.tenant_counts)
