#!/usr/bin/env python3
"""Key-value store traffic: the paper's small-packet motivation.

The paper's introduction points out that real applications leave even
less time per translation than full-size frames: in a large key-value
store, most keys are under 60 B and values under 1000 B, so packets (and
therefore translation requests) arrive much faster than the 1542 B frame
cadence the headline experiments assume.

This example runs the KEYVALUE extension workload (60% tiny packets)
against both designs and compares it with iperf3's full-frame stream at
the same tenant count.

Run:  python examples/keyvalue_store.py
"""

from repro import base_config, construct_trace, hypertrio_config
from repro.sim.simulator import HyperSimulator
from repro.trace import IPERF3, KEYVALUE


def run(profile, config, tenants=64):
    trace = construct_trace(
        profile,
        num_tenants=tenants,
        packets_per_tenant=200_000,
        interleaving="RR1",
        max_packets=10_000,
    )
    result = HyperSimulator(config, trace).run(
        warmup_packets=len(trace.packets) // 4
    )
    mean_bytes = result.packets.bytes_processed / max(
        1, result.packets.accepted
    )
    return result, mean_bytes


def main():
    tenants = 64
    print(f"{tenants} tenants, 200 Gb/s link")
    print(
        f"{'workload':10s} {'config':10s} {'mean pkt B':>10s} "
        f"{'util %':>7s} {'drops':>7s}"
    )
    for profile in (IPERF3, KEYVALUE):
        for config in (base_config(), hypertrio_config()):
            result, mean_bytes = run(profile, config, tenants)
            print(
                f"{profile.name:10s} {config.name:10s} {mean_bytes:10.0f} "
                f"{result.link_utilization * 100:7.1f} "
                f"{result.packets.dropped:7d}"
            )
    print()
    print(
        "small packets shrink the translation budget per request (a 150 B\n"
        "frame arrives every ~6 ns at 200 Gb/s vs ~62 ns for 1542 B), so\n"
        "the key-value workload is strictly harder for both designs —\n"
        "exactly the trend the paper's introduction warns about."
    )


if __name__ == "__main__":
    main()
