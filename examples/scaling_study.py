#!/usr/bin/env python3
"""Scaling study: sweep tenant counts and interleavings (Figure 10 style).

Sweeps Base and HyperTRIO across tenant counts and interleavings for one
benchmark and prints the utilisation matrix.  Command-line arguments pick
the benchmark and sweep sizes.

Run:  python examples/scaling_study.py [benchmark] [max_tenants]
      python examples/scaling_study.py websearch 256
"""

import sys

from repro import base_config, hypertrio_config, profile_by_name
from repro.analysis.scale import RunScale
from repro.analysis.sweeps import run_point


def main():
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "mediastream"
    max_tenants = int(sys.argv[2]) if len(sys.argv) > 2 else 256
    profile_by_name(benchmark)  # validate early

    counts = [n for n in (4, 16, 64, 256, 1024) if n <= max_tenants]
    scale = RunScale(
        name="example",
        tenant_counts=tuple(counts),
        interleavings=("RR1", "RR4"),
        benchmarks=(benchmark,),
        max_packets=12_000,
    )

    print(f"benchmark: {benchmark}, link 200 Gb/s, utilisation in %")
    header = f"{'interleaving':12s} {'config':10s}" + "".join(
        f"{n:>8d}" for n in counts
    )
    print(header)
    print("-" * len(header))
    for interleaving in scale.interleavings:
        for config in (base_config(), hypertrio_config()):
            cells = []
            for count in counts:
                point = run_point(config, benchmark, count, interleaving, scale)
                cells.append(f"{point.utilization_percent:8.1f}")
            print(f"{interleaving:12s} {config.name:10s}" + "".join(cells))
    print()
    print(
        "expected shape (paper Fig. 10): Base collapses past ~32 tenants; "
        "HyperTRIO stays high to 1024."
    )


if __name__ == "__main__":
    main()
