#!/usr/bin/env python3
"""Watch HyperTRIO lock in: windowed telemetry of a cold-start run.

The prefetcher and the partitioned DevTLB reinforce each other: once
prefetched entries start surviving until their predicted use, demand
misses fall, which lowers fill pressure, which helps more prefetches
survive.  This example runs a 256-tenant trace from cold caches and
charts per-window bandwidth and prefetch coverage so the transition to
the high-utilisation fixed point is visible.

Run:  python examples/warmup_dynamics.py
"""

from repro import base_config, construct_trace, hypertrio_config
from repro.analysis.ascii_plot import chart_from_columns
from repro.sim.simulator import HyperSimulator
from repro.sim.telemetry import Telemetry
from repro.trace import MEDIASTREAM


def run_with_telemetry(config, tenants=256, packets=10_000):
    trace = construct_trace(
        MEDIASTREAM,
        num_tenants=tenants,
        packets_per_tenant=200_000,
        interleaving="RR1",
        max_packets=packets,
    )
    telemetry = Telemetry(window_packets=500)
    HyperSimulator(config, trace, telemetry=telemetry).run()
    return telemetry


def main():
    tenants = 256
    print(f"cold start at {tenants} tenants (mediastream, RR1)\n")

    hyper = run_with_telemetry(hypertrio_config(), tenants)
    base = run_with_telemetry(base_config(), tenants)

    windows = list(range(len(hyper.windows)))
    chart = chart_from_columns(
        "per-window bandwidth (Gb/s)",
        windows,
        {
            "HyperTRIO": hyper.series("bandwidth_gbps"),
            "Base": base.series("bandwidth_gbps")[: len(windows)],
        },
        width=64,
        height=12,
    )
    print(chart.render())

    print()
    coverage = chart_from_columns(
        "per-window prefetch coverage (fraction of translations supplied)",
        windows,
        {"supplied": hyper.series("supplied_fraction")},
        width=64,
        height=10,
    )
    print(coverage.render())

    steady = hyper.steady_state_window()
    print()
    print("steady state:", steady.describe())
    print(
        "\nthe first windows run cold (every translation walks); coverage "
        "climbs as the\npredictor trains and pinned installs survive, and "
        "bandwidth follows — the\nself-reinforcing lock-in described in "
        "docs/MODEL.md."
    )


if __name__ == "__main__":
    main()
