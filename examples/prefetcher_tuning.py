#!/usr/bin/env python3
"""Tune the translation prefetcher (Section III / V-D).

The SID predictor's history length is the prefetcher's just-in-time lead:
too short and prefetches complete after the predicted tenant's turn; too
long and pinned entries are recycled before use.  The paper tuned 48 for
its latencies; this script sweeps the knob for this model and also shows
the Prefetch Buffer size trade-off.

Run:  python examples/prefetcher_tuning.py
"""

import dataclasses

from repro import construct_trace, hypertrio_config
from repro.sim.simulator import HyperSimulator
from repro.trace import MEDIASTREAM


def run_with(history_length=None, buffer_entries=None, trace=None):
    config = hypertrio_config()
    prefetch = config.prefetch
    if history_length is not None:
        prefetch = dataclasses.replace(prefetch, history_length=history_length)
    if buffer_entries is not None:
        prefetch = dataclasses.replace(prefetch, buffer_entries=buffer_entries)
    config = config.with_overrides(prefetch=prefetch)
    simulator = HyperSimulator(config, trace)
    return simulator.run(warmup_packets=len(trace.packets) // 4)


def main():
    tenants = 256
    print(f"sweeping prefetcher knobs at {tenants} tenants (mediastream, RR1)")

    def fresh_trace():
        return construct_trace(
            MEDIASTREAM,
            num_tenants=tenants,
            packets_per_tenant=200_000,
            interleaving="RR1",
            max_packets=10_000,
        )

    print()
    print("history length sweep (Table IV value: 48; our optimum: ~36):")
    print(f"{'history':>8s} {'util %':>8s} {'supplied %':>11s}")
    for history in (12, 24, 36, 48, 64):
        result = run_with(history_length=history, trace=fresh_trace())
        print(
            f"{history:8d} {result.link_utilization * 100:8.1f} "
            f"{result.prefetch_supplied_fraction * 100:11.1f}"
        )

    print()
    print("prefetch buffer size sweep (paper keeps it small: 8 entries):")
    print(f"{'entries':>8s} {'util %':>8s} {'PB hit %':>9s}")
    for entries in (2, 8, 32):
        result = run_with(buffer_entries=entries, trace=fresh_trace())
        print(
            f"{entries:8d} {result.link_utilization * 100:8.1f} "
            f"{result.prefetch_buffer_hit_rate * 100:9.1f}"
        )


if __name__ == "__main__":
    main()
