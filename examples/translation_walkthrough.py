#!/usr/bin/env python3
"""Walk through individual translations on a live device model.

Uses :class:`repro.device.NicDevice` — the step-by-step API — to show
exactly what happens to each of a packet's three translation requests
(Figure 3's path): which structure answered, at what latency, and how the
picture changes from a cold device to a warm one, and after a host-side
invalidation.

Run:  python examples/translation_walkthrough.py
"""

from repro import hypertrio_config
from repro.device import NicDevice
from repro.trace import MEDIASTREAM, construct_trace


def show(title, report):
    print(f"\n{title}")
    if not report.accepted:
        print("  packet DROPPED (no free PTB entry)")
        return
    for request in report.requests:
        print("  " + request.describe())
    print(f"  packet translation latency: "
          f"{report.translation_latency_ns:.1f} ns")


def main():
    trace = construct_trace(
        MEDIASTREAM, num_tenants=2, packets_per_tenant=1000, max_packets=10
    )
    nic = NicDevice(hypertrio_config(), trace.system)
    packet = trace.packets[0]

    show("1. cold device: every request walks through the IOMMU",
         nic.receive(packet, now=0.0))
    show("2. same packet again: DevTLB answers at device speed",
         nic.receive(packet, now=10_000.0))

    nic.invalidate(packet.sid, packet.giovas[1])
    show("3. after the host invalidates the data-buffer page",
         nic.receive(packet, now=20_000.0))

    other = next(p for p in trace.packets if p.sid != packet.sid)
    show("4. a different tenant, same gIOVAs, its own translations",
         nic.receive(other, now=30_000.0))

    print(f"\ndevice drop rate so far: {nic.drop_rate * 100:.0f}%")
    print(
        "note how tenant 2's translations resolve to different host frames "
        "than tenant 1's\neven though the guest addresses are identical — "
        "the conflict at the heart of the paper."
    )


if __name__ == "__main__":
    main()
