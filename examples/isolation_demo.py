#!/usr/bin/env python3
"""Performance isolation under an antagonist (extension study).

Section III claims the partitioned DevTLB "prevents a low-bandwidth
tenant from evicting translations for high-bandwidth tenants".  This
example measures the claim head-on: seven iperf3 victims share the device
with one antagonist whose working set deliberately thrashes any shared
cache, and we compare victim throughput with and without it under both
designs — plus a structured comparison of the contended runs.

Run:  python examples/isolation_demo.py
"""

from repro import base_config, hypertrio_config
from repro.analysis.compare import compare_results, comparison_table
from repro.analysis.fairness import victim_slowdown
from repro.analysis.isolation import ANTAGONIST
from repro.sim.simulator import HyperSimulator
from repro.trace import IPERF3, TraceConstructor, make_mixed_specs

NUM_VICTIMS = 7
PACKETS = 6000


def run(config, with_antagonist):
    assignments = [(IPERF3, NUM_VICTIMS)]
    if with_antagonist:
        assignments.append((ANTAGONIST, 1))
    specs = make_mixed_specs(tuple(assignments), packets_per_tenant=200_000)
    trace = TraceConstructor().construct(specs, "RR1", max_packets=PACKETS)
    return HyperSimulator(config, trace).run(warmup_packets=PACKETS // 4)


def main():
    victims = list(range(NUM_VICTIMS))
    contended = {}
    print(f"{NUM_VICTIMS} iperf3 victims vs one antagonist "
          f"({ANTAGONIST.num_data_pages} pages, near-random access)\n")
    for config in (base_config(), hypertrio_config()):
        baseline = run(config, with_antagonist=False)
        contended[config.name] = run(config, with_antagonist=True)
        retention = victim_slowdown(baseline, contended[config.name], victims)
        print(
            f"{config.name:10s} victim throughput retention: "
            f"{retention * 100:5.1f}%  "
            f"(contended link at "
            f"{contended[config.name].link_utilization * 100:.1f}%)"
        )

    print()
    comparison = compare_results(contended["Base"], contended["HyperTRIO"])
    print(comparison_table(
        comparison, title="contended runs: HyperTRIO vs Base"
    ).render())
    print(
        "\nthe partitioned DevTLB confines the antagonist to its own "
        "partition, so the\nvictims keep their cached translations — the "
        "isolation property, measured."
    )


if __name__ == "__main__":
    main()
