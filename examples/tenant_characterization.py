#!/usr/bin/env python3
"""Characterise single- and multi-tenant gIOVA streams (Section IV-D).

Reproduces the paper's Figure 8 analysis: the three page-frequency groups
of a single tenant, the periodic ~1500-use data-page pattern, and the
multi-tenant observation that independent tenants (same guest OS and
driver) use identical gIOVA page addresses.

Run:  python examples/tenant_characterization.py
"""

import dataclasses

from repro.trace import (
    MEDIASTREAM,
    LogCollector,
    characterize_multi_tenant,
    characterize_single_tenant,
    collect_single_tenant,
    make_tenant_specs,
)


def single_tenant():
    profile = dataclasses.replace(MEDIASTREAM, jump_probability=0.0)
    log = collect_single_tenant(profile, packets=95_000)
    analysis = characterize_single_tenant(log)
    print("single tenant (mediastream):")
    print(f"  total translation requests: {analysis.total_requests}")
    for name in ("ring", "data", "init"):
        group = analysis.groups[name]
        print(
            f"  group {name:5s}: {group.page_count:3d} pages, "
            f"{group.accesses_per_page:10.1f} accesses/page"
        )
    print(f"  periodic data-page pattern: {analysis.periodic}")
    print(f"  mean sequential run length: {analysis.mean_run_length:.0f} uses")
    print("  (paper: ~1500 sequential uses per 2 MB page, periodic order)")


def multi_tenant():
    specs = make_tenant_specs(MEDIASTREAM, num_tenants=8, packets_per_tenant=2_000)
    logs = LogCollector().collect_flat(specs)
    analysis = characterize_multi_tenant(logs)
    print()
    print(f"multi-tenant ({analysis.num_tenants} tenants):")
    print(
        f"  mean pairwise data-page overlap: "
        f"{analysis.mean_pairwise_overlap * 100:.0f}%"
    )
    print(f"  distinct 2 MB data pages across all tenants: "
          f"{analysis.distinct_data_pages}")
    print(
        "  -> identical guest OS + driver allocate identical gIOVAs, which "
        "is why\n     un-partitioned translation caches thrash in "
        "hyper-tenant setups"
    )


if __name__ == "__main__":
    single_tenant()
    multi_tenant()
