#!/usr/bin/env python3
"""Export a Perfetto trace and per-tenant metrics from one run.

Attaches a full observability bundle (event tracer + metrics registry +
cross-tenant eviction attribution) to a Base-configuration run, then:

* writes ``trace_export.trace.json`` — open it at https://ui.perfetto.dev
  (or ``chrome://tracing``) to see one track per hardware structure with
  one row per tenant: packet admissions, DevTLB hits/misses, walker-pool
  spans, PTB queueing, prefetch lifecycles;
* writes ``trace_export.metrics.json`` — per-SID latency percentiles and
  which tenant evicted which tenant's cache entries (render it with
  ``repro-sim report-metrics trace_export.metrics.json``);
* prints the per-tenant p99 table directly, showing the interference the
  shared Base DevTLB lets one tenant inflict on another.

Run:  python examples/trace_export.py
"""

from repro import base_config, construct_trace
from repro.obs import Observability, write_metrics, write_trace
from repro.sim.simulator import HyperSimulator
from repro.trace import MEDIASTREAM


def main():
    tenants = 16
    trace = construct_trace(
        MEDIASTREAM,
        num_tenants=tenants,
        packets_per_tenant=200_000,
        interleaving="RR1",
        max_packets=4_000,
    )
    # sample_rate < 1 keeps the trace small on long runs; sampling is per
    # packet (a request's lifecycle is never half-recorded) and seeded,
    # so re-running reproduces the same sample.
    observability = Observability.recording(sample_rate=0.5, seed=0)
    result = HyperSimulator(
        base_config(), trace, observability=observability
    ).run()

    tracer = observability.tracer
    trace_path = write_trace(tracer.events, "trace_export.trace.json")
    metrics_path = write_metrics(
        "trace_export.metrics.json", observability, result
    )
    print(result.summary())
    print(
        f"\n{len(tracer.events)} events from {tracer.packets_sampled} sampled "
        f"packets ({tracer.packets_skipped} skipped) -> {trace_path}"
    )
    print(f"per-tenant metrics -> {metrics_path}")

    per_sid = observability.metrics.histograms_by_label(
        "translation_latency_ns", "sid"
    )
    print("\nper-tenant translation latency (ns):")
    print(f"  {'sid':>3}  {'requests':>8}  {'p50':>8}  {'p99':>8}  {'max':>8}")
    for sid in sorted(per_sid):
        histogram = per_sid[sid]
        print(
            f"  {sid:>3}  {histogram.count:>8}  "
            f"{histogram.percentile(50):>8.0f}  "
            f"{histogram.percentile(99):>8.0f}  {histogram.max_ns:>8.0f}"
        )

    cross = observability.evictions.cross_tenant_count("devtlb")
    victims = observability.evictions.victim_counts("devtlb")
    print(f"\ncross-tenant DevTLB evictions: {cross}")
    if victims:
        worst = max(victims, key=victims.get)
        print(
            f"worst-hit tenant: sid {worst} lost {victims[worst]} entries "
            f"to other tenants (HyperTRIO's partitioned DevTLB drives this "
            f"to zero by construction)"
        )


if __name__ == "__main__":
    main()
