#!/usr/bin/env python3
"""Quickstart: simulate Base vs HyperTRIO on one workload.

Builds a 64-tenant mediastream hyper-trace, runs it through the paper's
two configurations (Table IV), and prints achieved bandwidth and the hit
rates of every translation structure.

Run:  python examples/quickstart.py
"""

from repro import base_config, construct_trace, hypertrio_config
from repro.sim.simulator import HyperSimulator
from repro.trace import MEDIASTREAM


def main():
    # A hyper-trace: 64 tenants running mediastream, round-robin
    # interleaved, capped at 12k packets for a quick run.  Per-tenant
    # budgets stay large so data pages keep their ~1500-use periods.
    trace = construct_trace(
        MEDIASTREAM,
        num_tenants=64,
        packets_per_tenant=200_000,
        interleaving="RR1",
        max_packets=12_000,
    )
    print(
        f"trace: {trace.stats.total_packets} packets, "
        f"{trace.stats.total_translations} translations, "
        f"{trace.num_tenants} tenants, {trace.interleaving} interleaving"
    )

    warmup = len(trace.packets) // 4
    for config in (base_config(), hypertrio_config()):
        result = HyperSimulator(config, trace).run(warmup_packets=warmup)
        print()
        print(result.summary())
        for name in ("devtlb", "iotlb", "nested_tlb", "pte_cache"):
            stats = result.cache_stats[name]
            print(
                f"    {name:12s} hit rate {stats.hit_rate * 100:5.1f}% "
                f"({stats.hits}/{stats.accesses})"
            )
        if result.prefetch_requests:
            print(
                f"    prefetcher supplied "
                f"{result.prefetch_supplied_fraction * 100:.1f}% of "
                f"translations ({result.prefetch_requests} prefetches)"
            )


if __name__ == "__main__":
    main()
