"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures and
prints its rows (the paper-vs-measured record lives in EXPERIMENTS.md).
Scale is controlled by the ``REPRO_BENCH_SCALE`` environment variable
(``smoke`` / ``default`` / ``full``); see ``repro.analysis.scale``.

Run with::

    pytest benchmarks/ --benchmark-only
"""

import pytest

from repro.analysis.scale import current_scale


@pytest.fixture(scope="session")
def scale():
    """The session's run scale (env-selected)."""
    return current_scale()


@pytest.fixture
def run_experiment(benchmark, capsys):
    """Benchmark one experiment driver and print its rendered table.

    Experiment drivers are end-to-end simulations, so they run once
    (``rounds=1``) — the time reported is the cost of regenerating the
    table/figure at the current scale.
    """

    def runner(driver, *args, **kwargs):
        table = benchmark.pedantic(
            driver, args=args, kwargs=kwargs, rounds=1, iterations=1
        )
        with capsys.disabled():
            print()
            print(table.render())
        return table

    return runner
