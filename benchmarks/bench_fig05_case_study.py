"""Figure 5: cumulative bandwidth, native vs VF, on a 10 Gb/s link.

Paper shape: the native series rises to ~9.4 Gb/s and stays flat; the VF
series matches it up to ~8 connections, then collapses as translations
thrash the shared DevTLB.
"""

from repro.analysis.experiments import figure5


def test_figure5_vf_bandwidth_collapses(run_experiment, scale):
    table = run_experiment(figure5, scale)
    native = table.column("native Gb/s")
    vf = table.column("VF Gb/s")
    # Native is monotone non-decreasing and ends near line rate.
    assert all(b >= a - 1e-9 for a, b in zip(native, native[1:]))
    if scale.name != "smoke":
        assert native[-1] > 9.0
        # VF peaks early then collapses well below native.
        assert max(vf) > 0.9 * max(native)
        assert vf[-1] < 0.5 * native[-1]
