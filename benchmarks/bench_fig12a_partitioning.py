"""Figure 12a: partitioning the DevTLB and translation caches.

Paper shape: utilisation stays high until multiple tenants share a
partition; partitioning beats size/associativity/policy changes but does
not alone solve hyper-tenant scaling.
"""

from repro.analysis.experiments import figure12a


def test_figure12a_partitioning_helps_but_saturates(run_experiment, scale):
    table = run_experiment(figure12a, scale)
    max_tenants = max(scale.tenant_counts)
    for row in table.rows:
        benchmark, tenants, base_util, partitioned_util = row
        # Partitioning never hurts materially.
        assert partitioned_util >= base_util - 8.0, (benchmark, tenants)
        if tenants == max_tenants and max_tenants >= 256:
            # ... but alone it cannot reach high utilisation (no PTB).
            assert partitioned_util < 60.0, benchmark
