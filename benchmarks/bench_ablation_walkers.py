"""Ablation: IOMMU page-table-walker concurrency.

The paper assumes the chipset can overlap walks (the PTB sizing argument
counts 112 outstanding requests).  This sweep bounds the walker pool and
shows hyper-tenant utilisation degrading as walks serialise.
"""

from repro.analysis.report import ExperimentTable
from repro.analysis.sweeps import cached_trace
from repro.core.config import hypertrio_config
from repro.sim.simulator import HyperSimulator


def _sweep(scale):
    tenants = min(256, max(scale.tenant_counts))
    table = ExperimentTable(
        experiment_id="Ablation",
        title=f"IOMMU walker concurrency at {tenants} tenants (mediastream)",
        columns=["walkers", "util %"],
    )
    trace = cached_trace("mediastream", tenants, "RR1", scale)
    warmup = scale.warmup_for(len(trace.packets))
    for walkers in (1, 4, None):
        config = hypertrio_config().with_overrides(iommu_walkers=walkers)
        result = HyperSimulator(config, trace).run(warmup_packets=warmup)
        table.add_row(
            "unbounded" if walkers is None else walkers,
            result.link_utilization * 100.0,
        )
    return table


def test_ablation_walker_concurrency(run_experiment, scale):
    table = run_experiment(_sweep, scale)
    utils = table.column("util %")
    assert utils[-1] >= utils[0] - 5.0  # unbounded >= single walker
