"""Extension: direct measurement of the P-DevTLB isolation claim.

The paper states (Section III) that partitioning "prevents a low-bandwidth
tenant from evicting translations for high-bandwidth tenants" but shows
only aggregate bandwidth.  This study pits iperf3 victims against one
cache-thrashing antagonist and measures victim throughput retention.
"""

from repro.analysis.isolation import isolation_study


def test_isolation_partitioning_protects_victims(run_experiment, scale):
    table = run_experiment(isolation_study, scale)
    for row in table.rows:
        victims, base_retention, hyper_retention, *_ = row
        if victims <= 7:
            # At low victim counts the base DevTLB could have held the
            # victims' working set: the antagonist's damage is visible,
            # and partitioning removes most of it.
            assert hyper_retention > base_retention, row
