"""Figure 9: modeled bandwidth vs tenant count for DevTLB configurations.

Paper shape: full 200 Gb/s up to ~4 connections with the 64-entry DevTLB,
then an eviction-driven collapse mirroring the hardware case study; a
1024-entry DevTLB delays but does not avoid the collapse.
"""

from repro.analysis.experiments import figure9


def test_figure9_devtlb_contention_collapse(run_experiment, scale):
    table = run_experiment(figure9, scale)
    small = table.column("64-entry 8-way Gb/s")
    if scale.name != "smoke":
        # Near line rate at the start, collapsed at the end.
        assert small[0] > 160.0
        assert small[-1] < 0.3 * small[0]
        large = table.column("1024-entry 8-way Gb/s")
        # The big DevTLB helps in the middle of the sweep...
        assert max(l - s for s, l in zip(small, large)) > 20.0
