"""Figure 11a: scaling the DevTLB does not restore hyper-tenant scaling.

Paper shape: the 1024-entry DevTLB helps up to ~64 tenants; past ~128
tenants both sizes give the same collapsed utilisation.
"""

from repro.analysis.experiments import figure11a


def test_figure11a_bigger_devtlb_insufficient(run_experiment, scale):
    table = run_experiment(figure11a, scale)
    max_tenants = max(scale.tenant_counts)
    for row in table.rows:
        benchmark, tenants, small_util, large_util = row
        if tenants == max_tenants and max_tenants >= 256:
            # At hyper-tenant scale the 16x larger DevTLB is within a few
            # points of the small one — size does not solve the problem.
            assert abs(large_util - small_util) < 15.0, benchmark
