"""Ablation: two-dimensional walk lengths emerge from page-table structure.

DESIGN.md: the 24-access (4 KB) and 19-access (2 MB) walk counts are
walked over real radix tables, not hard-coded.  This bench measures the
raw walker on both page sizes and the cost of the memoisation layer.
"""

from repro.analysis.report import ExperimentTable
from repro.mem.address import PAGE_SHIFT_2M, PAGE_SHIFT_4K
from repro.mem.allocator import FrameAllocator
from repro.mem.pagetable import AddressSpace
from repro.mem.walker import TwoDimensionalWalker


def _build():
    space = AddressSpace(
        FrameAllocator(base=0x4000_0000), FrameAllocator(base=0x10_0000_0000)
    )
    space.map_io_page(0x3480_0000, PAGE_SHIFT_4K)
    space.map_io_page(0xBBE0_0000, PAGE_SHIFT_2M)
    return TwoDimensionalWalker(space)


def _walk_table(_scale=None):
    walker = _build()
    table = ExperimentTable(
        experiment_id="Ablation",
        title="Two-dimensional walk lengths by page size",
        columns=["mapping", "phases", "memory accesses"],
    )
    for label, giova in (("4 KB (ring page)", 0x3480_0000),
                         ("2 MB (data page)", 0xBBE0_0000)):
        walk = walker.walk(giova)
        table.add_row(label, len(walk.phases), walk.total_memory_accesses)
    table.add_note("Paper/Table II: 24 accesses for 4-level 4 KB walks.")
    return table


def test_ablation_walk_lengths(run_experiment):
    table = run_experiment(_walk_table)
    accesses = dict(zip(table.column("mapping"), table.column("memory accesses")))
    assert accesses["4 KB (ring page)"] == 24
    assert accesses["2 MB (data page)"] == 19


def test_memoized_walk_throughput(benchmark):
    walker = _build()
    walker.walk(0x3480_0000)  # prime the memo

    def replay():
        for _ in range(1000):
            walker.walk(0x3480_0000)

    benchmark(replay)
