"""Ablation: DevTLB partition count.

The paper fixes one 8-entry row per partition (8 partitions) and leaves
"exploring the optimal number of partitions ... outside of the scope of
this work".  This sweep explores exactly that: fewer partitions give each
group more associativity, more partitions give stronger isolation.
"""

from repro.analysis.report import ExperimentTable
from repro.analysis.sweeps import cached_trace
from repro.core.config import TlbConfig, hypertrio_config
from repro.sim.simulator import HyperSimulator


def _sweep(scale):
    tenants = min(256, max(scale.tenant_counts))
    table = ExperimentTable(
        experiment_id="Ablation",
        title=f"DevTLB partition count at {tenants} tenants (mediastream)",
        columns=["partitions", "util %", "devtlb hit %"],
    )
    trace = cached_trace("mediastream", tenants, "RR1", scale)
    warmup = scale.warmup_for(len(trace.packets))
    partition_counts = (1, 8) if scale.name == "smoke" else (1, 2, 8)
    for partitions in partition_counts:
        config = hypertrio_config().with_overrides(
            devtlb=TlbConfig(
                num_entries=64, ways=8, num_partitions=partitions, policy="lfu"
            )
        )
        result = HyperSimulator(config, trace).run(warmup_packets=warmup)
        table.add_row(
            partitions,
            result.link_utilization * 100.0,
            result.hit_rate("devtlb") * 100.0,
        )
    table.add_note(
        "The paper's choice (8 partitions, one row each) favours isolation "
        "at hyper-tenant scale; with prefetch-pinned installs the "
        "partitioned variants retain prefetched entries reliably."
    )
    return table


def test_ablation_partition_count(run_experiment, scale):
    table = run_experiment(_sweep, scale)
    utils = dict(zip(table.column("partitions"), table.column("util %")))
    # Partitioning (8) at hyper-tenant scale is at least as good as none.
    assert utils[8] >= utils[1] - 8.0
