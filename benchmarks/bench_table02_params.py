"""Table II: performance-model parameters (paper vs this model)."""

from repro.analysis.experiments import table2


def test_table2_simulator_parameters(run_experiment):
    table = run_experiment(table2)
    paper = dict(zip(table.column("parameter"), table.column("paper")))
    model = dict(zip(table.column("parameter"), table.column("this model")))
    assert paper["One-way PCIe latency"] == model["One-way PCIe latency"]
    assert paper["DRAM latency"] == model["DRAM latency"]
