"""Table III: translation-request counts per benchmark.

The paper's counts come from 1024-tenant traces (up to 108,513
translations per tenant, 69.7 M total for iperf3).  We regenerate scaled
traces with the same per-tenant spread; the scale-free check is the
min/max ratio per benchmark.
"""

import pytest

from repro.analysis.experiments import table3
from repro.analysis.scale import current_scale


def test_table3_translation_request_counts(run_experiment):
    scale = current_scale()
    tenants = {"smoke": 16, "default": 256, "full": 1024}[scale.name]
    table = run_experiment(table3, num_tenants=tenants, packets_per_tenant=1200)
    for row in table.rows:
        benchmark, *_, measured_ratio, paper_ratio = row
        assert measured_ratio == pytest.approx(paper_ratio, rel=0.25), benchmark
