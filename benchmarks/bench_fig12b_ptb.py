"""Figure 12b: Pending Translation Buffer size sweep.

Paper shape: 8 entries reach full bandwidth up to 16 tenants; 32 entries
reach ~2/3 of the 200 Gb/s link at 1024 tenants (136 Gb/s in the paper).
"""

from repro.analysis.experiments import figure12b


def test_figure12b_ptb_size_monotone(run_experiment, scale):
    table = run_experiment(figure12b, scale)
    for row in table.rows:
        benchmark, tenants, ptb1, ptb8, ptb32 = row
        assert ptb8 >= ptb1 - 5.0, (benchmark, tenants)
        assert ptb32 >= ptb8 - 5.0, (benchmark, tenants)
        if tenants >= 256:
            # More in-flight translations buy a large factor at scale.
            assert ptb32 > 2 * ptb1, (benchmark, tenants)
