"""Figure 10: the headline result — Base vs HyperTRIO scalability.

Paper shape: Base is capped at 12-30 Gb/s (<= 15% of the 200 Gb/s link)
for any tenant count beyond ~32; HyperTRIO sustains high utilisation all
the way to 1024 tenants (up to 100% for RR orders, lower for RAND1).
"""

from repro.analysis.experiments import figure10


def test_figure10_hypertrio_scales_base_collapses(run_experiment, scale):
    table = run_experiment(figure10, scale)
    max_tenants = max(scale.tenant_counts)
    for row in table.rows:
        benchmark, interleaving, tenants, _, _, base_util, hyper_util = row
        if tenants == max_tenants and interleaving.startswith("RR"):
            # Base collapses, HyperTRIO does not.
            assert base_util < 20.0, (benchmark, interleaving)
            assert hyper_util > 60.0, (benchmark, interleaving)
            assert hyper_util > 4 * base_util, (benchmark, interleaving)
