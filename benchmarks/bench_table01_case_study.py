"""Table I: case-study host parameters (reference data)."""

from repro.analysis.experiments import table1


def test_table1_case_study_hosts(run_experiment):
    table = run_experiment(table1)
    assert len(table.rows) == 3
