"""Figure 8: single-tenant page-access characterisation.

Paper shape (8a): three frequency groups — one ring page touched by every
packet, 2 MB data pages each ~30x colder, and ~70 nearly-untouched init
pages.  (8b): data pages are used in long sequential runs (~1500 uses) in
a fixed cyclic order.
"""

from repro.analysis.experiments import figure8


def test_figure8_access_groups_and_periodicity(run_experiment, scale):
    packets = {"smoke": 10_000, "default": 95_000, "full": 95_000}[scale.name]
    table = run_experiment(figure8, packets=packets)
    groups = {row[0]: row for row in table.rows}
    ring_rate = groups["ring"][3]
    data_rate = groups["data"][3]
    init_rate = groups["init"][3]
    assert ring_rate > 10 * data_rate > 100 * init_rate
    assert groups["data"][1] == 30
    assert groups["init"][1] == 70
