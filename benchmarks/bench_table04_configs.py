"""Table IV: Base vs HyperTRIO architectural parameters."""

from repro.analysis.experiments import table4


def test_table4_architectural_parameters(run_experiment):
    table = run_experiment(table4)
    rows = {row[0]: (row[1], row[2]) for row in table.rows}
    assert rows["PTB entries"] == (1, 32)
