"""Figure 12c: the translation prefetching scheme's contribution.

Paper shape: prefetching adds up to ~30 percentage points of link
utilisation for websearch in hyper-tenant setups over the partitioned +
PTB32 design, with the prefetcher supplying ~45% of translations at 1024
tenants.
"""

from repro.analysis.experiments import figure12c


def test_figure12c_prefetch_contribution(run_experiment, scale):
    table = run_experiment(figure12c, scale)
    max_tenants = max(scale.tenant_counts)
    for row in table.rows:
        benchmark, tenants, off_util, on_util, supplied = row
        if tenants == max_tenants and max_tenants >= 256:
            assert on_util > off_util + 15.0, benchmark
            assert supplied > 30.0, benchmark
