"""Figure 4: IOMMU TLB PTE miss rate vs parallel connections (AMD host).

Paper shape: miss rate is negligible below ~80 connections, then climbs
(4.3% at 120); nested page-table reads rise sharply over the same range.
"""

from repro.analysis.experiments import figure4


def test_figure4_pte_miss_rate_rises_with_connections(run_experiment, scale):
    table = run_experiment(figure4, scale)
    rates = table.column("pte miss rate %")
    reads = table.column("nested page reads")
    if scale.name != "smoke":
        # Shape: miss rate and page-table traffic grow with the tenant count.
        assert rates[-1] > rates[0]
        assert reads[-1] > reads[0]
