"""Ablation: prefetch history length (the just-in-time lead knob).

The paper's Table IV uses a 48-access stride for the authors' latencies
and notes the host retunes it when the system changes.  This sweep shows
the optimum for this model's latencies (~36) and the cliff when the
stride overshoots the pinned-entry window.
"""

import dataclasses

from repro.analysis.report import ExperimentTable
from repro.analysis.sweeps import cached_trace
from repro.core.config import hypertrio_config
from repro.sim.simulator import HyperSimulator


def _sweep(scale):
    tenants = min(256, max(scale.tenant_counts))
    table = ExperimentTable(
        experiment_id="Ablation",
        title=f"Prefetch history length at {tenants} tenants (mediastream)",
        columns=["history length", "util %", "prefetch-supplied %"],
    )
    trace = cached_trace("mediastream", tenants, "RR1", scale)
    warmup = scale.warmup_for(len(trace.packets))
    strides = (16, 24, 36, 48) if scale.name != "smoke" else (16, 36)
    for stride in strides:
        config = hypertrio_config()
        config = config.with_overrides(
            prefetch=dataclasses.replace(config.prefetch, history_length=stride)
        )
        result = HyperSimulator(config, trace).run(warmup_packets=warmup)
        table.add_row(
            stride,
            result.link_utilization * 100.0,
            result.prefetch_supplied_fraction * 100.0,
        )
    table.add_note(
        "Too short: prefetches complete after the predicted use.  Too long: "
        "pinned entries are recycled before use.  Optimum ~36 here vs 48 in "
        "the authors' system."
    )
    return table


def test_ablation_history_length_has_interior_optimum(run_experiment, scale):
    table = run_experiment(_sweep, scale)
    utils = table.column("util %")
    if scale.name != "smoke":
        assert max(utils) == max(utils[1:-1] + [utils[1]])  # interior-ish peak
        assert max(utils) > utils[-1]  # 48 overshoots in this model
