"""Guard: disabled observability must cost (near) nothing.

The observability layer's contract (docs/OBSERVABILITY.md) is that a
simulator constructed with ``Observability.disabled()`` — or with no
bundle at all — has an identical hot path: the ``enabled`` flag is
checked once at attach time and every per-request tracer/metrics/span/
phase call is compiled out into ``None`` attribute loads.  This
benchmark enforces the budget on both null shapes:

* ``Observability.disabled()`` — the empty bundle;
* a bundle carrying explicit ``NullSpanRecorder`` / ``NullPhaseProfiler``
  instruments — the shape the service builds when span recording and
  phase profiling are compiled out, which must normalise to the same
  ``None`` fast path.

Each must stay within ``BUDGET_FRACTION`` (3 %) of the un-instrumented
baseline.  The *enabled* phase-profiling cost is also measured and
reported (not gated — it buys the per-phase breakdown and is expected to
cost real time).

Runs standalone (CI calls it directly) or under pytest::

    PYTHONPATH=src python benchmarks/bench_obs_overhead.py
    pytest benchmarks/bench_obs_overhead.py

Trials alternate the variants and the comparison uses the minimum per
side, so one-off scheduler hiccups cannot produce a false failure (or
mask a true regression behind a slow baseline trial).
"""

from __future__ import annotations

import time

from repro.core.config import base_config
from repro.obs import NullPhaseProfiler, NullSpanRecorder, Observability
from repro.sim.simulator import HyperSimulator
from repro.trace.constructor import construct_trace
from repro.trace.tenant import MEDIASTREAM

#: Allowed slowdown of a disabled-observability run vs the baseline.
BUDGET_FRACTION = 0.03
TRIALS = 5
TENANTS = 32
PACKETS = 6_000


def _nulled_bundle() -> Observability:
    """Explicit null span/phase instruments; must normalise to ``None``."""
    return Observability(spans=NullSpanRecorder(), phases=NullPhaseProfiler())


def _time_run(trace, observability) -> float:
    config = base_config()
    simulator = HyperSimulator(config, trace, observability=observability)
    start = time.perf_counter()
    simulator.run()
    return time.perf_counter() - start


def measure_overhead() -> dict:
    """Min-of-N timings of every variant vs baseline; returns a report."""
    trace = construct_trace(
        MEDIASTREAM, num_tenants=TENANTS, packets_per_tenant=200_000,
        max_packets=PACKETS,
    )
    variants = {
        "baseline": lambda: None,
        "disabled": Observability.disabled,
        "nulled": _nulled_bundle,
        "profiled": lambda: Observability.profiling(
            spans=False, metrics=False
        ),
    }
    # Warm every path once (imports, allocator, trace-derived state).
    for factory in variants.values():
        _time_run(trace, factory())
    times = {name: [] for name in variants}
    for _ in range(TRIALS):
        for name, factory in variants.items():
            times[name].append(_time_run(trace, factory()))
    best = {name: min(samples) for name, samples in times.items()}
    baseline = best["baseline"]
    return {
        "baseline_s": baseline,
        "disabled_s": best["disabled"],
        "nulled_s": best["nulled"],
        "profiled_s": best["profiled"],
        "disabled_fraction": best["disabled"] / baseline - 1.0,
        "nulled_fraction": best["nulled"] / baseline - 1.0,
        "profiled_fraction": best["profiled"] / baseline - 1.0,
        "budget_fraction": BUDGET_FRACTION,
    }


def test_disabled_observability_within_budget():
    report = measure_overhead()
    for variant in ("disabled", "nulled"):
        assert report[f"{variant}_fraction"] < BUDGET_FRACTION, (
            f"{variant} observability costs "
            f"{report[f'{variant}_fraction'] * 100:.2f}% "
            f"(budget {BUDGET_FRACTION * 100:.0f}%): "
            f"baseline {report['baseline_s'] * 1e3:.1f} ms, "
            f"{variant} {report[f'{variant}_s'] * 1e3:.1f} ms"
        )


def main() -> int:
    report = measure_overhead()
    print(
        f"baseline {report['baseline_s'] * 1e3:8.1f} ms  "
        f"disabled {report['disabled_s'] * 1e3:8.1f} ms "
        f"({report['disabled_fraction'] * 100:+6.2f}%)  "
        f"nulled {report['nulled_s'] * 1e3:8.1f} ms "
        f"({report['nulled_fraction'] * 100:+6.2f}%)  "
        f"budget {BUDGET_FRACTION * 100:.0f}%"
    )
    print(
        f"phase profiling enabled: {report['profiled_s'] * 1e3:8.1f} ms "
        f"({report['profiled_fraction'] * 100:+6.2f}%, informational)"
    )
    failed = [
        variant for variant in ("disabled", "nulled")
        if report[f"{variant}_fraction"] >= BUDGET_FRACTION
    ]
    if failed:
        print(f"FAIL: {', '.join(failed)} path exceeds the overhead budget")
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
