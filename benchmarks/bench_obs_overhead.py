"""Guard: disabled observability must cost (near) nothing.

The observability layer's contract (docs/OBSERVABILITY.md) is that a
simulator constructed with ``Observability.disabled()`` — or with no
bundle at all — has an identical hot path: the ``enabled`` flag is
checked once at attach time and every per-request tracer/metrics call is
compiled out into ``None`` attribute loads.  This benchmark enforces the
budget: the disabled-bundle run must stay within ``BUDGET_FRACTION``
(3 %) of the un-instrumented baseline.

Runs standalone (CI calls it directly) or under pytest::

    PYTHONPATH=src python benchmarks/bench_obs_overhead.py
    pytest benchmarks/bench_obs_overhead.py

Trials alternate baseline/disabled and the comparison uses the minimum
per side, so one-off scheduler hiccups cannot produce a false failure
(or mask a true regression behind a slow baseline trial).
"""

from __future__ import annotations

import time

from repro.core.config import base_config
from repro.obs import Observability
from repro.sim.simulator import HyperSimulator
from repro.trace.constructor import construct_trace
from repro.trace.tenant import MEDIASTREAM

#: Allowed slowdown of the disabled-observability run vs the baseline.
BUDGET_FRACTION = 0.03
TRIALS = 5
TENANTS = 32
PACKETS = 6_000


def _time_run(trace, observability) -> float:
    config = base_config()
    simulator = HyperSimulator(config, trace, observability=observability)
    start = time.perf_counter()
    simulator.run()
    return time.perf_counter() - start


def measure_overhead() -> dict:
    """Min-of-N timings for baseline vs disabled bundle; returns a report."""
    trace = construct_trace(
        MEDIASTREAM, num_tenants=TENANTS, packets_per_tenant=200_000,
        max_packets=PACKETS,
    )
    # Warm both paths once (imports, allocator, trace-derived state).
    _time_run(trace, None)
    _time_run(trace, Observability.disabled())
    baseline_times = []
    disabled_times = []
    for _ in range(TRIALS):
        baseline_times.append(_time_run(trace, None))
        disabled_times.append(_time_run(trace, Observability.disabled()))
    baseline = min(baseline_times)
    disabled = min(disabled_times)
    return {
        "baseline_s": baseline,
        "disabled_s": disabled,
        "overhead_fraction": disabled / baseline - 1.0,
        "budget_fraction": BUDGET_FRACTION,
    }


def test_disabled_observability_within_budget():
    report = measure_overhead()
    assert report["overhead_fraction"] < BUDGET_FRACTION, (
        f"disabled observability costs "
        f"{report['overhead_fraction'] * 100:.2f}% "
        f"(budget {BUDGET_FRACTION * 100:.0f}%): "
        f"baseline {report['baseline_s'] * 1e3:.1f} ms, "
        f"disabled {report['disabled_s'] * 1e3:.1f} ms"
    )


def main() -> int:
    report = measure_overhead()
    print(
        f"baseline {report['baseline_s'] * 1e3:8.1f} ms  "
        f"disabled {report['disabled_s'] * 1e3:8.1f} ms  "
        f"overhead {report['overhead_fraction'] * 100:+6.2f}% "
        f"(budget {BUDGET_FRACTION * 100:.0f}%)"
    )
    if report["overhead_fraction"] >= BUDGET_FRACTION:
        print("FAIL: disabled observability exceeds its overhead budget")
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
