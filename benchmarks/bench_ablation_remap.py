"""Ablation: driver unmap/remap on data-page advance.

Section IV-D observes each data page is used ~1500 times "until the driver
unmaps it".  With paper-scale reuse periods the unmap cost is negligible;
this ablation shortens the period to expose the remap penalty and checks
the invalidation machinery end to end.
"""

import dataclasses

from repro.analysis.report import ExperimentTable
from repro.core.config import hypertrio_config
from repro.sim.simulator import HyperSimulator
from repro.trace.constructor import construct_trace
from repro.trace.tenant import MEDIASTREAM


def _sweep(scale):
    tenants = 8 if scale.name == "smoke" else 32
    packets = min(scale.max_packets, 6000)
    table = ExperimentTable(
        experiment_id="Ablation",
        title=f"Driver unmap/remap on page advance ({tenants} tenants)",
        columns=["uses/page", "remap", "util %", "devtlb invalidations"],
    )
    for uses in (1500, 12):
        for remap in (False, True):
            profile = dataclasses.replace(
                MEDIASTREAM,
                remap_on_advance=remap,
                jump_probability=0.0,
                uses_per_page=uses,
            )
            trace = construct_trace(
                profile, num_tenants=tenants, packets_per_tenant=200_000,
                max_packets=packets,
            )
            result = HyperSimulator(hypertrio_config(), trace).run(
                warmup_packets=packets // 4
            )
            table.add_row(
                uses,
                "yes" if remap else "no",
                result.link_utilization * 100.0,
                result.cache_stats["devtlb"].invalidations,
            )
    table.add_note(
        "At the paper's ~1500-use periods, remapping costs almost nothing; "
        "the penalty only appears when pages turn over quickly."
    )
    return table


def test_ablation_remap_costs_only_at_fast_turnover(run_experiment, scale):
    table = run_experiment(_sweep, scale)
    rows = {(row[0], row[1]): row for row in table.rows}
    # Fast turnover actually invalidates; slow turnover rarely does (a
    # short smoke trace may see no 1500-use transition at all).
    assert rows[(12, "yes")][3] > 0
    assert rows[(12, "yes")][3] >= rows[(1500, "yes")][3]
    assert rows[(12, "no")][3] == 0
    # Long periods: remap is nearly free.
    assert abs(rows[(1500, "yes")][2] - rows[(1500, "no")][2]) < 10.0
