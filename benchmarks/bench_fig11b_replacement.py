"""Figure 11b: DevTLB replacement policies on the Base design.

Paper shape: LFU outperforms LRU in the mid-tenant regime (up to 2x for
iperf3 at 16 tenants); even the Belady oracle cannot make the Base design
scale past ~64 tenants.
"""

from repro.analysis.experiments import figure11b


def test_figure11b_policies_do_not_fix_scaling(run_experiment, scale):
    table = run_experiment(figure11b, scale)
    max_tenants = max(scale.tenant_counts)
    for row in table.rows:
        benchmark, tenants, lru_util, lfu_util, oracle_util = row
        # Oracle is an upper bound for the other policies (small tolerance
        # for timing feedback noise).
        assert oracle_util >= max(lru_util, lfu_util) - 6.0, (benchmark, tenants)
        if tenants == max_tenants and max_tenants >= 256:
            assert oracle_util < 35.0, benchmark  # even Belady collapses
