"""Paper-scale replay study for the vectorized batch engine.

Replays a >=10M-request (3,334,000-packet, ~3 gIOVAs each) 1024-tenant
RR1 iperf3 trace through :class:`~repro.sim.vectorized.VectorizedSimulator`
across a PTB-entries sweep, reporting throughput (host packets/s and
modeled link utilisation) and drop-rate curves, plus a parity + speedup
check against the analytic engine on a prefix of the same trace (running
the analytic engine over all 3.3M packets per point would take hours —
that is the point of this study).

Usage::

    PYTHONPATH=src python benchmarks/bench_vectorized_scale.py \
        [--packets 3334000] [--ptb 1,2,4,8,16,32] \
        [--parity-packets 51200] [--out vector_scale.json]

The trace is constructed once and shared across sweep points (simulators
never mutate tenant systems), so the dominant setup cost is paid once.
The numbers feed the "Vectorized engine at paper scale" study in
``EXPERIMENTS.md``.
"""

from __future__ import annotations

import argparse
import json
import time

from repro.core.config import ArchConfig, TlbConfig, base_config
from repro.runner.serialize import result_to_dict
from repro.sim.simulator import HyperSimulator
from repro.sim.vectorized import VectorizedSimulator
from repro.trace.constructor import construct_trace
from repro.trace.tenant import profile_by_name

TENANTS = 1024
BENCHMARK = "iperf3"
INTERLEAVING = "RR1"
SEED = 0


def vector_config(ptb_entries: int) -> ArchConfig:
    """Base geometry, LRU in every TLB level, with the given PTB depth."""

    def lru(tlb: TlbConfig) -> TlbConfig:
        return TlbConfig(
            num_entries=tlb.num_entries,
            ways=tlb.ways,
            num_partitions=tlb.num_partitions,
            policy="lru",
        )

    config = base_config()
    return config.with_overrides(
        name=f"Base-LRU/ptb{ptb_entries}",
        ptb_entries=ptb_entries,
        devtlb=lru(config.devtlb),
        l2_tlb=lru(config.l2_tlb),
        l3_tlb=lru(config.l3_tlb),
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--packets", type=int, default=3_334_000,
        help="trace length in packets (default: 3,334,000 — just over "
             "10M translation requests at ~3 gIOVAs per packet)",
    )
    parser.add_argument(
        "--ptb", default="1,2,4,8,16,32",
        help="comma-separated PTB depths to sweep (default: 1,2,4,8,16,32)",
    )
    parser.add_argument(
        "--parity-packets", type=int, default=51_200,
        help="prefix length for the analytic parity/speedup check "
             "(default: 51200; 0 disables it)",
    )
    parser.add_argument(
        "--out", default=None, metavar="PATH",
        help="also write the rows as JSON",
    )
    args = parser.parse_args(argv)
    ptb_depths = [int(p) for p in args.ptb.split(",")]

    print(
        f"constructing {args.packets} packets, {TENANTS} tenants "
        f"({BENCHMARK}/{INTERLEAVING}, seed {SEED}) ..."
    )
    started = time.perf_counter()
    trace = construct_trace(
        profile_by_name(BENCHMARK),
        num_tenants=TENANTS,
        packets_per_tenant=200_000,
        interleaving=INTERLEAVING,
        seed=SEED,
        max_packets=args.packets,
    )
    n = len(trace.packets)
    requests = sum(len(p.giovas) for p in trace.packets)
    print(
        f"  {n} packets / {requests} translation requests "
        f"in {time.perf_counter() - started:.1f} s"
    )

    rows = []
    parity_row = None
    if args.parity_packets:
        prefix = min(args.parity_packets, n)
        config = vector_config(ptb_depths[0])
        started = time.perf_counter()
        analytic = HyperSimulator(config, trace).run(max_packets=prefix)
        analytic_wall = time.perf_counter() - started
        started = time.perf_counter()
        vectorized = VectorizedSimulator(config, trace).run(max_packets=prefix)
        vector_wall = time.perf_counter() - started
        parity = (
            json.dumps(result_to_dict(analytic), sort_keys=True)
            == json.dumps(result_to_dict(vectorized), sort_keys=True)
        )
        speedup = analytic_wall / vector_wall if vector_wall > 0 else 0.0
        parity_row = {
            "prefix_packets": prefix,
            "ptb_entries": ptb_depths[0],
            "analytic_wall_s": analytic_wall,
            "vectorized_wall_s": vector_wall,
            "speedup": speedup,
            "parity": parity,
        }
        print(
            f"parity prefix ({prefix} pkts, ptb={ptb_depths[0]}): "
            f"analytic {analytic_wall:.1f} s, vectorized {vector_wall:.1f} s "
            f"-> {speedup:.1f}x, parity={'ok' if parity else 'FAILED'}"
        )
        if not parity:
            return 1

    header = (
        f"{'ptb':>4} {'wall_s':>8} {'pkts/s':>9} {'req/s':>9} "
        f"{'util%':>6} {'drop%':>6} {'drops':>9} {'leaped':>7}"
    )
    print(header)
    for depth in ptb_depths:
        simulator = VectorizedSimulator(vector_config(depth), trace)
        started = time.perf_counter()
        result = simulator.run()
        wall = time.perf_counter() - started
        arrived = result.packets.arrived
        dropped = result.packets.dropped
        row = {
            "ptb_entries": depth,
            "packets": n,
            "requests": requests,
            "wall_s": wall,
            "packets_per_s": n / wall if wall > 0 else 0.0,
            "requests_per_s": requests / wall if wall > 0 else 0.0,
            "link_utilization": result.link_utilization,
            "drop_rate": dropped / arrived if arrived else 0.0,
            "packets_dropped": dropped,
            "blocks_leaped": simulator.batch_stats["blocks_leaped"],
            "mode": simulator.batch_stats["mode"],
        }
        rows.append(row)
        print(
            f"{depth:>4} {wall:>8.1f} {row['packets_per_s']:>9.0f} "
            f"{row['requests_per_s']:>9.0f} "
            f"{result.link_utilization * 100:>6.2f} "
            f"{row['drop_rate'] * 100:>6.2f} {dropped:>9} "
            f"{row['blocks_leaped']:>7}"
        )

    if args.out:
        document = {
            "schema": "repro-vector-scale/1",
            "tenants": TENANTS,
            "benchmark": BENCHMARK,
            "interleaving": INTERLEAVING,
            "seed": SEED,
            "packets": n,
            "requests": requests,
            "parity_check": parity_row,
            "rows": rows,
        }
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2)
            handle.write("\n")
        print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
