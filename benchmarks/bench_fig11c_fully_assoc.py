"""Figure 11c: fully associative DevTLB with oracle replacement.

Paper shape: once the tenant count times the per-tenant active
translation set exceeds the entry count, every request misses; beyond ~8
tenants utilisation is low even for this idealised DevTLB.
"""

from repro.analysis.experiments import figure11c


def test_figure11c_ideal_devtlb_still_collapses(run_experiment, scale):
    table = run_experiment(figure11c, scale)
    max_tenants = max(scale.tenant_counts)
    for row in table.rows:
        benchmark, tenants, util, active_set = row
        if tenants * active_set <= 64:
            assert util > 80.0, (benchmark, tenants)
        if tenants == max_tenants and max_tenants >= 64:
            assert util < 40.0, (benchmark, tenants)
