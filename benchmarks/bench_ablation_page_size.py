"""Ablation: 2 MB vs 4 KB guest data-buffer pages.

The paper's guests run with huge pages enabled (Section IV-D), making the
data-buffer guest walk one level shorter (19 vs 24 accesses).  This
ablation re-runs a mid-scale sweep with 4 KB data buffers to quantify how
much the huge pages were worth.
"""

import dataclasses

from repro.analysis.report import ExperimentTable
from repro.analysis.sweeps import cached_trace
from repro.core.config import base_config
from repro.sim.simulator import HyperSimulator
from repro.trace.constructor import construct_trace
from repro.trace.tenant import MEDIASTREAM


def _sweep(scale):
    tenants = 16 if scale.name == "smoke" else 32
    packets = min(scale.max_packets, 6000)
    table = ExperimentTable(
        experiment_id="Ablation",
        title=f"Guest data-page size at {tenants} tenants (mediastream, Base)",
        columns=["data pages", "util %", "mean request latency ns"],
    )
    for label, huge in (("2 MB (paper)", True), ("4 KB", False)):
        profile = dataclasses.replace(MEDIASTREAM, huge_data_pages=huge)
        trace = construct_trace(
            profile, num_tenants=tenants, packets_per_tenant=200_000,
            max_packets=packets,
        )
        result = HyperSimulator(base_config(), trace).run(
            warmup_packets=packets // 4
        )
        table.add_row(
            label, result.link_utilization * 100.0, result.latency.mean_ns
        )
    table.add_note(
        "4 KB guest mappings lengthen the two-dimensional walk from 19 to "
        "24 accesses for the data buffers."
    )
    return table


def test_ablation_huge_pages_cheaper_walks(run_experiment, scale):
    table = run_experiment(_sweep, scale)
    latencies = table.column("mean request latency ns")
    assert latencies[1] >= latencies[0] * 0.95  # 4 KB never cheaper
