"""Extension: key-value (small-packet) traffic.

The paper's introduction motivates translation scalability with key-value
stores ("most of the keys are under 60B, and values are under 1000B"),
where packets arrive far faster than full frames.  This bench quantifies
how much harder small packets make the problem for both designs.
"""

from repro.analysis.report import ExperimentTable
from repro.analysis.sweeps import run_point
from repro.core.config import base_config, hypertrio_config


def _sweep(scale):
    table = ExperimentTable(
        experiment_id="Extension",
        title="Key-value (60% small packets) vs full-frame iperf3",
        columns=["benchmark", "tenants", "Base util %", "HyperTRIO util %"],
    )
    counts = scale.tenant_counts[:2] if scale.name == "smoke" else (16, 64, 256)
    for benchmark in ("iperf3", "keyvalue"):
        for count in counts:
            base_point = run_point(base_config(), benchmark, count, "RR1", scale)
            hyper_point = run_point(
                hypertrio_config(), benchmark, count, "RR1", scale
            )
            table.add_row(
                benchmark,
                count,
                base_point.utilization_percent,
                hyper_point.utilization_percent,
            )
    table.add_note(
        "Small packets shrink the per-request translation budget; the "
        "key-value rows are bounded above by the iperf3 rows."
    )
    return table


def test_keyvalue_is_strictly_harder(run_experiment, scale):
    table = run_experiment(_sweep, scale)
    rows = {(row[0], row[1]): row for row in table.rows}
    for (benchmark, count), row in rows.items():
        if benchmark == "keyvalue":
            full_frame = rows[("iperf3", count)]
            assert row[3] <= full_frame[3] + 5.0  # HyperTRIO
            assert row[2] <= full_frame[2] + 5.0  # Base
