#!/usr/bin/env python
"""CI chaos harness for the translation service's wire resilience.

For every seed in the matrix and every wire fault class (connection
drops, mid-frame cuts, byte corruption, stalls, split/coalesced writes,
reconnect storms, everything at once):

1. run the trace offline (``simulate``) into a golden result;
2. replay the same trace through a :class:`ChaosProxy` driving that
   fault class between a sessioned ``ServiceClient`` and a live
   ``ServiceServer``;
3. assert the flushed ``SimulationResult`` is **byte-identical** to the
   golden offline run, that the intended faults actually fired, that a
   reconnect-storm run breaches the ``conn_churn`` SLO rule, and that
   the run leaked nothing (no live proxy links, no registered server
   connections, no dangling asyncio tasks);
4. additionally pin that a *fault-free* plan is byte-transparent on the
   wire (per-direction SHA-256 of received vs forwarded bytes) for a
   legacy session-less client, and that the ``conn.*`` counters surface
   through the prom export.

Exits nonzero with a diagnostic on any deviation.  Run from the repo
root: ``python scripts/service_chaos.py`` (CI runs the default matrix;
``--seeds 1 --packets 120`` is a quick local pass).
"""

import argparse
import asyncio
import json
import random
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.core.config import hypertrio_config  # noqa: E402
from repro.faults.netchaos import (  # noqa: E402
    ChaosProxy,
    CoalesceSpec,
    CorruptSpec,
    CutSpec,
    DropSpec,
    NetworkFaultPlan,
    ReconnectStormSpec,
    SplitSpec,
    StallSpec,
    netplan_from_json,
    netplan_to_json,
)
from repro.obs.slo import SloRule, SloWatcher  # noqa: E402
from repro.runner.serialize import result_to_dict  # noqa: E402
from repro.service import protocol  # noqa: E402
from repro.service.client import CircuitBreaker, ServiceClient  # noqa: E402
from repro.service.engine import ServiceEngine  # noqa: E402
from repro.service.server import ServiceServer  # noqa: E402
from repro.sim.simulator import HyperSimulator  # noqa: E402
from repro.trace.constructor import construct_trace  # noqa: E402
from repro.trace.tenant import profile_by_name  # noqa: E402

FAULT_CLASSES = (
    "null", "drop", "cut", "corrupt", "stall", "split_coalesce",
    "storm", "combined",
)


def make_trace(tenants, packets):
    return construct_trace(
        profile_by_name("mediastream"),
        num_tenants=tenants,
        packets_per_tenant=200_000,
        max_packets=packets,
    )


def plan_for(fault_class, seed):
    """A seeded plan of one fault class; positions drawn from the seed."""
    rng = random.Random(seed)
    early = rng.randint(2, 8)       # frames into connection 0
    offset = rng.randint(0, 40)     # corruption byte offset
    if fault_class == "null":
        return NetworkFaultPlan(seed=seed)
    if fault_class == "drop":
        return NetworkFaultPlan(
            seed=seed, drops=(DropSpec(after_frames=early),)
        )
    if fault_class == "cut":
        return NetworkFaultPlan(
            seed=seed, cuts=(CutSpec(frame=early, direction="request"),)
        )
    if fault_class == "corrupt":
        return NetworkFaultPlan(
            seed=seed,
            corruptions=(
                CorruptSpec(frame=early, direction="response", offset=offset),
                CorruptSpec(
                    frame=early, direction="request", offset=offset,
                    connection=1,
                ),
            ),
        )
    if fault_class == "stall":
        return NetworkFaultPlan(
            seed=seed,
            stalls=(
                StallSpec(frame=early, delay_s=1.2, direction="response"),
            ),
        )
    if fault_class == "split_coalesce":
        return NetworkFaultPlan(
            seed=seed,
            splits=(SplitSpec(chunk_bytes=rng.randint(3, 17)),),
            coalesces=(
                CoalesceSpec(frames=rng.randint(2, 6), direction="response"),
            ),
        )
    if fault_class == "storm":
        return NetworkFaultPlan(
            seed=seed,
            reconnect_storms=(
                ReconnectStormSpec(
                    connections=5, after_frames=2, jitter_frames=4
                ),
            ),
        )
    if fault_class == "combined":
        return NetworkFaultPlan(
            seed=seed,
            stalls=(
                StallSpec(
                    frame=2, delay_s=1.0, direction="response", connection=0
                ),
            ),
            corruptions=(
                CorruptSpec(
                    frame=3, direction="response", offset=offset, connection=1
                ),
            ),
            cuts=(CutSpec(frame=early, direction="request", connection=2),),
            drops=(DropSpec(after_frames=early + 2, connection=3),),
            splits=(SplitSpec(chunk_bytes=9, connection=4),),
        )
    raise SystemExit(f"unknown fault class {fault_class!r}")


def canonical(result) -> str:
    # Round-trip through JSON first: result_to_dict keys per-tenant maps
    # by int, which sort_keys orders numerically, while the wire copy
    # has string keys ordered lexically (differs from 11 tenants up).
    return json.dumps(
        json.loads(json.dumps(result_to_dict(result))), sort_keys=True
    )


async def run_one(fault_class, plan, golden_json, tenants, packets):
    """One chaos replay; returns a diagnostics dict or raises SystemExit."""
    context = f"[{fault_class} seed={plan.seed}]"
    session = fault_class != "null"
    engine = ServiceEngine(hypertrio_config(), make_trace(tenants, packets))
    watcher = SloWatcher(
        [SloRule(name="churn", kind="conn_churn", threshold=1.0)]
    )
    server = ServiceServer(engine, slo_watcher=watcher)
    await server.start()
    # Prime the churn rule's rate window now, so the storm's reconnect
    # burst (which front-loads the run) lands inside a measured interval
    # instead of being swallowed by the first sample.
    server.evaluate_slo()
    proxy = ChaosProxy("127.0.0.1", server.port, plan)
    await proxy.start()
    client = ServiceClient(
        "127.0.0.1",
        proxy.port,
        session=session,
        request_timeout=0.4 if session else None,
        breaker=CircuitBreaker(failure_threshold=8) if session else None,
        rng=random.Random(plan.seed),
    )
    try:
        await client.connect()
        outcomes = await client.replay(
            make_trace(tenants, packets).packets, window=32
        )
        flush = await client.flush()
        prom = (await client.stats(fmt="prom"))["text"]
    finally:
        await client.close()
        await proxy.aclose()
        await server.shutdown()

    if len(outcomes) != packets:
        raise SystemExit(
            f"{context} {len(outcomes)} outcomes for {packets} packets"
        )
    bad = [o for o in outcomes if o.get("type") != protocol.RESULT]
    if bad:
        raise SystemExit(f"{context} non-result outcomes: {bad[:3]}")
    wire_json = json.dumps(flush["result"], sort_keys=True)
    if wire_json != golden_json:
        raise SystemExit(
            f"{context} flushed SimulationResult differs from offline "
            f"simulate (lengths {len(wire_json)} vs {len(golden_json)})"
        )
    if server.engine.processed != packets:
        raise SystemExit(
            f"{context} engine processed {server.engine.processed} != "
            f"{packets}: a resend was double-translated or a packet lost"
        )

    # Fault accounting per class.
    if fault_class == "null":
        if not proxy.transparent() or proxy.total_faults:
            raise SystemExit(
                f"{context} null plan perturbed the wire: "
                f"faults={proxy.faults_injected}"
            )
    elif fault_class == "split_coalesce":
        if not proxy.transparent():
            raise SystemExit(f"{context} re-chunking altered wire bytes")
    elif not proxy.total_faults:
        raise SystemExit(f"{context} no fault fired; the run proved nothing")
    if fault_class == "storm":
        if proxy.faults_injected.get("drop", 0) < 5:
            raise SystemExit(
                f"{context} storm dropped "
                f"{proxy.faults_injected.get('drop', 0)}/5 connections"
            )
        if watcher.transitions < 1:
            raise SystemExit(
                f"{context} reconnect storm never breached the conn_churn "
                f"SLO rule (opened={server.conn_counters['opened']})"
            )

    # Observability: conn.* counters must surface in the prom export.
    for series in ("conn_opened", "conn_reconnects", "conn_open"):
        if series not in prom:
            raise SystemExit(f"{context} prom export misses {series}")

    # Leak checks: nothing may outlive the run.
    if proxy.live_links:
        raise SystemExit(f"{context} {proxy.live_links} proxy links leaked")
    if server._connections:
        raise SystemExit(
            f"{context} {len(server._connections)} server connections leaked"
        )
    for _ in range(200):
        dangling = [
            t for t in asyncio.all_tasks() if t is not asyncio.current_task()
        ]
        if not dangling:
            break
        await asyncio.sleep(0.01)
    else:
        raise SystemExit(f"{context} dangling asyncio tasks: {dangling}")

    return {
        "faults": dict(proxy.faults_injected),
        "reconnects": client.reconnects,
        "opened": server.conn_counters["opened"],
        "resends_served": server.conn_counters["resends_served"],
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--seeds", default="1,2,3",
        help="comma-separated seed matrix (default 1,2,3)",
    )
    parser.add_argument("--tenants", type=int, default=8)
    parser.add_argument("--packets", type=int, default=240)
    parser.add_argument(
        "--classes", default=",".join(FAULT_CLASSES),
        help="comma-separated subset of fault classes to run",
    )
    args = parser.parse_args()
    seeds = [int(s) for s in args.seeds.split(",") if s]
    classes = [c for c in args.classes.split(",") if c]
    unknown = set(classes) - set(FAULT_CLASSES)
    if unknown:
        raise SystemExit(f"unknown fault classes: {sorted(unknown)}")

    golden = HyperSimulator(
        hypertrio_config(), make_trace(args.tenants, args.packets)
    ).run(warmup_packets=0)
    golden_json = canonical(golden)
    print(
        f"golden offline run: {args.packets} packets, "
        f"{args.tenants} tenants"
    )

    runs = 0
    for seed in seeds:
        for fault_class in classes:
            plan = plan_for(fault_class, seed)
            # The plan that runs is the plan that round-trips: chaos
            # schedules are bit-reproducible artifacts, not ephemera.
            if netplan_from_json(netplan_to_json(plan)) != plan:
                raise SystemExit(
                    f"[{fault_class} seed={seed}] plan JSON round trip drifted"
                )
            info = asyncio.run(
                run_one(
                    fault_class, plan, golden_json, args.tenants, args.packets
                )
            )
            runs += 1
            print(
                f"[{fault_class} seed={seed}] parity OK  "
                f"faults={info['faults']} reconnects={info['reconnects']} "
                f"resends_served={info['resends_served']}"
            )

    print(
        f"service chaos OK: {runs} runs byte-identical to offline simulate, "
        f"0 leaked connections, 0 dangling tasks"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
