#!/usr/bin/env python
"""CI smoke for the translation service (`repro-sim serve`).

End to end, against real subprocesses over real TCP:

1. run the offline simulation of a pinned workload;
2. start a `repro-sim serve` subprocess with a warm-restart checkpoint;
3. replay the same trace through it with the async client;
4. SIGTERM the server mid-replay — it must drain, flush the checkpoint,
   and exit 0;
5. start a second server from the checkpoint **on the same port**; the
   still-running client must reconnect and finish the replay without
   losing or duplicating a packet;
6. flush and assert the service's final SimulationResult is
   byte-identical to the offline one through the exact serializer.

Exits nonzero with a diagnostic on any deviation.  Run from the repo
root: ``python scripts/service_smoke.py``.
"""

import asyncio
import json
import os
import signal
import socket
import subprocess
import sys
import tempfile
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.core.config import hypertrio_config  # noqa: E402
from repro.runner.serialize import result_from_dict, result_to_dict  # noqa: E402
from repro.service.client import ServiceClient  # noqa: E402
from repro.sim.simulator import HyperSimulator  # noqa: E402
from repro.trace.constructor import construct_trace  # noqa: E402
from repro.trace.tenant import profile_by_name  # noqa: E402

BENCHMARK = "mediastream"
TENANTS = 6
PACKETS = 400
KILL_AFTER = 150  # outcomes received before the mid-replay SIGTERM


def make_trace():
    return construct_trace(
        profile_by_name(BENCHMARK),
        num_tenants=TENANTS,
        packets_per_tenant=200_000,
        max_packets=PACKETS,
    )


def free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def start_server(port: int, checkpoint: Path, resume: bool) -> subprocess.Popen:
    argv = [
        sys.executable, "-m", "repro.cli", "serve",
        "--host", "127.0.0.1", "--port", str(port),
    ]
    if resume:
        argv += ["--resume-from", str(checkpoint)]
    else:
        argv += [
            "--benchmark", BENCHMARK, "--tenants", str(TENANTS),
            "--packets", str(PACKETS), "--checkpoint", str(checkpoint),
        ]
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src") + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        argv, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
        text=True, env=env, cwd=str(REPO),
    )
    banner = proc.stdout.readline().strip()
    expected = f"listening on 127.0.0.1:{port}"
    if banner != expected:
        proc.kill()
        _, err = proc.communicate(timeout=10)
        raise SystemExit(
            f"server banner mismatch: got {banner!r}, want {expected!r}\n{err}"
        )
    return proc


async def run_smoke(port: int, checkpoint: Path, offline) -> None:
    proc = start_server(port, checkpoint, resume=False)
    trace = make_trace()
    client = ServiceClient("127.0.0.1", port, connect_timeout=60.0)
    await client.connect()

    received = asyncio.Event()
    count = 0

    def on_outcome(seq, reply):
        nonlocal count
        count += 1
        if count >= KILL_AFTER:
            received.set()

    replay = asyncio.ensure_future(
        client.replay(trace.packets, window=32, on_outcome=on_outcome)
    )

    async def restart_mid_replay():
        await received.wait()
        proc.send_signal(signal.SIGTERM)
        out, err = await asyncio.get_event_loop().run_in_executor(
            None, lambda: proc.communicate(timeout=60)
        )
        if proc.returncode != 0:
            raise SystemExit(
                f"server exited {proc.returncode} on SIGTERM\n{err}"
            )
        if f"checkpoint: {checkpoint}" not in out:
            raise SystemExit(f"no checkpoint line in server output:\n{out}")
        if not checkpoint.exists():
            raise SystemExit(f"checkpoint file missing: {checkpoint}")
        return start_server(port, checkpoint, resume=True)

    proc2 = await restart_mid_replay()
    try:
        outcomes = await replay
        if len(outcomes) != PACKETS:
            raise SystemExit(
                f"replay returned {len(outcomes)} outcomes, want {PACKETS}"
            )
        if client.reconnects < 1:
            raise SystemExit(
                "client never reconnected; SIGTERM path was not exercised"
            )
        flush = await client.flush()
        await client.close()
    finally:
        proc2.send_signal(signal.SIGTERM)
        proc2.communicate(timeout=60)
    if proc2.returncode != 0:
        raise SystemExit(f"restarted server exited {proc2.returncode}")

    if flush["packets"] != PACKETS:
        raise SystemExit(
            f"service processed {flush['packets']} packets, want {PACKETS}"
        )
    restored = result_from_dict(flush["result"])
    if restored != offline:
        raise SystemExit(
            "service result != offline result after warm restart"
        )
    if json.dumps(result_to_dict(offline)) != json.dumps(
        result_to_dict(restored)
    ):
        raise SystemExit("service result not byte-identical through serializer")
    print(
        f"service smoke OK: {PACKETS} packets, "
        f"{client.reconnects} reconnect(s), byte-identical result"
    )


def main() -> int:
    offline = HyperSimulator(hypertrio_config(), make_trace()).run(
        warmup_packets=0
    )
    with tempfile.TemporaryDirectory() as tmp:
        checkpoint = Path(tmp) / "service.ckpt"
        asyncio.run(run_smoke(free_port(), checkpoint, offline))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
