#!/usr/bin/env python
"""Regenerate the ``devices=1`` golden regression file.

Run this ONLY against a commit whose single-device results are known-good
(the file pinned in the repository was produced by the pre-fabric-refactor
engine).  Usage::

    PYTHONPATH=src:tests python scripts/generate_golden.py
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "tests"))
sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from golden_common import GOLDEN_PATH, compute_all_golden_points  # noqa: E402


def main() -> int:
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    document = {
        "schema": "repro-golden-devices1/1",
        "points": compute_all_golden_points(),
    }
    GOLDEN_PATH.write_text(
        json.dumps(document, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    print(f"wrote {GOLDEN_PATH}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
