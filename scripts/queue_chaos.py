#!/usr/bin/env python
"""CI chaos harness for the distributed experiment queue.

End to end, against real ``repro-sim run --queue`` subprocesses sharing
one SQLite queue and one result store:

1. run the sweep single-host into a *golden* result store;
2. start a fleet worker against a fresh queue, wait (via the queue
   database) until it holds a claim mid-job, and SIGKILL it — no signal
   handler, no release, exactly what a crashed host looks like;
3. start two survivor workers; the dead worker's lease expires, one
   survivor takes the claim over, and the fleet drains the queue;
4. assert: every job terminal ``done``, at least one audited takeover,
   **zero double-executions** (every point appears exactly once in
   ``results.jsonl``), and every result payload **byte-identical** to
   the golden single-host run's.

Exits nonzero with a diagnostic on any deviation.  Run from the repo
root: ``python scripts/queue_chaos.py`` (add ``--scale smoke`` for a
quick local pass; CI runs the default scale, whose sweep includes the
paper's 1024-tenant point).
"""

import argparse
import json
import os
import signal
import sqlite3
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.runner import ExperimentQueue, ResultStore  # noqa: E402

KILL_RETRIES = 5  # attempts to land the SIGKILL while a claim is held


def worker_argv(args, runs_dir: Path, queue: Path, jobs: int):
    return [
        sys.executable, "-m", "repro.cli", "run",
        "--experiment", args.experiment, "--scale", args.scale,
        "--jobs", str(jobs), "--run-id", "fleet",
        "--runs-dir", str(runs_dir), "--queue", str(queue),
        "--lease", str(args.lease), "--no-progress",
    ]


def start_worker(argv) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = (
        str(REPO / "src") + os.pathsep + env.get("PYTHONPATH", "")
    )
    return subprocess.Popen(
        argv, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        env=env, cwd=str(REPO),
    )


def claimed_rows(queue_path: Path):
    """Claimed (worker, spec_hash) pairs, [] while the db doesn't exist."""
    try:
        conn = sqlite3.connect(f"file:{queue_path}?mode=ro", uri=True)
    except sqlite3.Error:
        return []
    try:
        return conn.execute(
            "SELECT claimed_by, spec_hash FROM jobs WHERE status='claimed'"
        ).fetchall()
    except sqlite3.Error:
        return []
    finally:
        conn.close()


def kill_claimer(args, runs_dir: Path, queue_path: Path) -> str:
    """Start a worker, SIGKILL it while it holds a claim; returns its id.

    The kill races the job finishing, so unlucky attempts (the claim
    completed between our poll and the signal) are retried with a fresh
    victim — each retry is cheap because finished points are memoized.
    """
    for attempt in range(1, KILL_RETRIES + 1):
        victim = start_worker(worker_argv(args, runs_dir, queue_path, jobs=1))
        deadline = time.monotonic() + 300.0
        while time.monotonic() < deadline:
            if victim.poll() is not None:
                raise SystemExit(
                    f"victim worker finished the whole sweep (exit "
                    f"{victim.returncode}) before it could be killed; "
                    f"use a larger --scale"
                )
            held = claimed_rows(queue_path)
            if held:
                break
            time.sleep(0.005)
        else:
            victim.kill()
            raise SystemExit("victim worker never claimed a job")
        victim.send_signal(signal.SIGKILL)
        victim.wait(timeout=30)
        orphaned = claimed_rows(queue_path)
        if orphaned:
            print(
                f"killed worker {orphaned[0][0]} holding "
                f"{len(orphaned)} claim(s) (attempt {attempt})"
            )
            return orphaned[0][0]
        print(f"kill attempt {attempt} landed between jobs; retrying")
    raise SystemExit(f"no claim survived the kill after {KILL_RETRIES} tries")


def canonical(payload) -> str:
    return json.dumps(payload, sort_keys=True)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--experiment", default="figure10")
    parser.add_argument("--scale", default="default",
                        choices=("smoke", "default", "full"))
    parser.add_argument("--lease", type=float, default=3.0)
    args = parser.parse_args()

    with tempfile.TemporaryDirectory() as tmp:
        golden_dir = Path(tmp) / "golden-runs"
        fleet_dir = Path(tmp) / "fleet-runs"
        queue_path = Path(tmp) / "queue.db"

        print(f"golden single-host run ({args.experiment}, {args.scale})")
        golden_run = subprocess.run(
            [
                sys.executable, "-m", "repro.cli", "run",
                "--experiment", args.experiment, "--scale", args.scale,
                "--jobs", "2", "--run-id", "golden",
                "--runs-dir", str(golden_dir), "--no-progress",
            ],
            env=dict(
                os.environ,
                PYTHONPATH=str(REPO / "src") + os.pathsep
                + os.environ.get("PYTHONPATH", ""),
            ),
            cwd=str(REPO), stdout=subprocess.DEVNULL, timeout=3600,
        )
        if golden_run.returncode != 0:
            raise SystemExit(f"golden run exited {golden_run.returncode}")
        golden = ResultStore(golden_dir, "golden")
        if golden.completed_count == 0:
            raise SystemExit("golden run produced no results")
        print(f"golden: {golden.completed_count} results")

        dead_worker = kill_claimer(args, fleet_dir, queue_path)

        survivors = [
            start_worker(worker_argv(args, fleet_dir, queue_path, jobs=2))
            for _ in range(2)
        ]
        for proc in survivors:
            try:
                proc.wait(timeout=3600)
            except subprocess.TimeoutExpired:
                proc.kill()
                raise SystemExit("survivor worker hung")
        codes = [proc.returncode for proc in survivors]
        if any(code != 0 for code in codes):
            raise SystemExit(f"survivor workers exited {codes}")

        with ExperimentQueue(queue_path, worker_id="harness") as queue:
            counts = queue.counts()
            takeovers = sum(
                row["takeovers"] for row in queue.worker_rows()
            )
            takeover_events = [
                row for row in queue.attempt_rows()
                if row["event"] == "takeover"
            ]
        if set(counts) != {"done"}:
            raise SystemExit(f"queue not fully drained: {counts}")
        if takeovers < 1 or not takeover_events:
            raise SystemExit("no takeover happened; the kill proved nothing")
        if not any(
            dead_worker in (row["detail"] or "") for row in takeover_events
        ):
            raise SystemExit(
                f"no takeover names the killed worker {dead_worker}: "
                f"{takeover_events}"
            )

        fleet = ResultStore(fleet_dir, "fleet")
        seen = {}
        for line in fleet.results_path.read_text(
            encoding="utf-8"
        ).splitlines():
            try:
                record = json.loads(line)
            except ValueError:
                continue  # torn tail from the SIGKILL, quarantined on load
            if record.get("status") == "ok":
                seen[record["spec_hash"]] = seen.get(
                    record["spec_hash"], 0
                ) + 1
        doubles = {h: n for h, n in seen.items() if n > 1}
        if doubles:
            raise SystemExit(f"double-executed jobs: {doubles}")

        golden_hashes = {r.spec_hash for r in golden.iter_completed()}
        if set(seen) != golden_hashes:
            raise SystemExit(
                f"fleet completed {len(seen)} points, "
                f"golden {len(golden_hashes)}"
            )
        mismatched = [
            spec_hash for spec_hash in golden_hashes
            if canonical(fleet.get(spec_hash).result)
            != canonical(golden.get(spec_hash).result)
        ]
        if mismatched:
            raise SystemExit(
                f"results differ from golden run: {mismatched}"
            )

    print(
        f"queue chaos OK: {counts['done']} jobs done, "
        f"{takeovers} takeover(s) from {dead_worker}, "
        f"0 double-executions, byte-identical to golden"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
