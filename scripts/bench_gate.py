#!/usr/bin/env python
"""Tolerance gate: diff a fresh bench document against a baseline.

Usage::

    python scripts/bench_gate.py NEW.json BASELINE.json \
        [--max-regression 0.4]

Rows are matched by ``(engine, config)`` and compared on
``packets_per_s``.  A row is a violation when it runs slower than
``baseline * (1 - max_regression)`` — the default tolerates a 40% drop:
still generous (CI machines differ), but tight enough that a hot-loop
regression of 2x cannot hide behind machine drift.  Rows present on
only one side are reported but never fail the gate, so the matrix is
allowed to grow; rows whose packet budgets differ are reported but not
gated either (throughput is only comparable at equal budgets — the
vectorized engine in particular gets faster per packet as the trace
grows, so a reduced-budget CI run must not be held to the committed
full-budget rate).

Exit status: 0 when every common row passes, 1 on any violation, 2 on
unreadable input.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def load_rows(path: Path):
    document = json.loads(path.read_text(encoding="utf-8"))
    if document.get("schema") != "repro-bench/1":
        raise ValueError(f"not a repro-bench/1 document: {path}")
    return {
        (row["engine"], row["config"]): (
            float(row["packets_per_s"]),
            int(row.get("packets", 0)),
        )
        for row in document["results"]
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("new", help="freshly produced bench JSON")
    parser.add_argument("baseline", help="committed baseline bench JSON")
    parser.add_argument(
        "--max-regression", type=float, default=0.4, metavar="FRACTION",
        help="largest tolerated packets/s drop as a 0..1 fraction "
             "(default: 0.4)",
    )
    args = parser.parse_args(argv)

    try:
        new_rows = load_rows(Path(args.new))
        base_rows = load_rows(Path(args.baseline))
    except (OSError, ValueError, KeyError, TypeError) as error:
        print(f"bench-gate: cannot read inputs: {error}", file=sys.stderr)
        return 2

    violations = []
    for key in sorted(new_rows):
        engine, config = key
        new_rate, new_packets = new_rows[key]
        if key not in base_rows:
            print(f"  {engine}/{config}: (new row, not gated)")
            continue
        base_rate, base_packets = base_rows[key]
        if new_packets != base_packets:
            print(
                f"  {engine}/{config}: (budget changed, "
                f"{base_packets} -> {new_packets} pkts, not gated)"
            )
            continue
        floor = base_rate * (1.0 - args.max_regression)
        change = (new_rate - base_rate) / base_rate * 100.0 if base_rate else 0.0
        verdict = "ok" if new_rate >= floor else "REGRESSION"
        print(
            f"  {engine}/{config}: {new_rate:.0f} vs {base_rate:.0f} pkts/s "
            f"({change:+.1f}%) -> {verdict}"
        )
        if new_rate < floor:
            violations.append(key)
    for key in sorted(set(base_rows) - set(new_rows)):
        print(f"  {key[0]}/{key[1]}: (gone from new document, not gated)")

    if violations:
        names = ", ".join(f"{e}/{c}" for e, c in violations)
        print(
            f"bench-gate: {len(violations)} row(s) regressed beyond "
            f"{args.max_regression * 100:.0f}%: {names}",
            file=sys.stderr,
        )
        return 1
    print("bench-gate: ok")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
